"""The name-resolution *service* layer: sharded lookups over the landmarks.

The core model (:mod:`repro.core.resolution`, :mod:`repro.core.sloppy_groups`)
captures the paper's §4.3/§4.4 structures as converged static snapshots.
This package puts a serving process around them:

* :class:`repro.resolution.service.VNodeRing` -- an immutable virtual-node
  consistent-hash ring with bisect successor lookup and incremental
  membership updates, placing records bit-identically to
  :class:`repro.naming.ConsistentHashRing`.
* :class:`repro.resolution.service.ShardedResolutionService` -- r-way
  successor-replicated storage of name→address records on the landmark
  shards, with deterministic arc-scoped rebalance on shard join/leave.
* :class:`repro.resolution.service.GroupContactIndex` -- bisect-backed
  longest-prefix contact selection, bit-identical to
  :meth:`repro.core.sloppy_groups.SloppyGrouping.best_group_contact`.
* :class:`repro.resolution.cache.RouterCache` -- the scheme-lifetime route
  cache (byte-budgeted LRU over landmark-SPT path extractions) the serving
  process keeps warm across lookups.
* :mod:`repro.resolution.traffic` -- a seeded Zipf lookup workload with
  diurnal and flash-crowd phases, billed per lookup against a converged
  :class:`~repro.core.nddisco.NDDiscoRouting` substrate.

Everything here is differentially pinned against the converged-state
oracles by ``tests/test_resolution_service.py``.
"""

from repro.resolution.cache import RouterCache
from repro.resolution.service import (
    GroupContactIndex,
    RebalanceReport,
    ShardedResolutionService,
    VNodeRing,
)
from repro.resolution.traffic import (
    LookupWorkload,
    TrafficReport,
    generate_lookup_workload,
    run_traffic,
)

__all__ = [
    "GroupContactIndex",
    "LookupWorkload",
    "RebalanceReport",
    "RouterCache",
    "ShardedResolutionService",
    "TrafficReport",
    "VNodeRing",
    "generate_lookup_workload",
    "run_traffic",
]
