"""Sharded name-resolution service over the landmark set (§4.3 served live).

The converged model (:class:`repro.core.resolution.LandmarkResolutionDatabase`)
answers "which landmark stores which record" for a fixed landmark set.  A
*serving* resolution layer additionally needs:

* **replication** -- the paper stores each record at the landmark owning
  the name's hash; a service replicates it on the next ``r`` distinct
  successors clockwise so single-shard loss does not lose records until
  the next soft-state refresh;
* **membership churn** -- landmarks leave and join (driven here by
  :class:`~repro.dynamics.engine.ChurnEngine` node events), and the ring
  must rebalance *deterministically* and *incrementally*: only records in
  the hash arcs whose successor sets actually change are rescanned;
* **an immutable ring** -- lookups concurrent with a rebalance see either
  the old or the new ring, never a half-updated one, so membership
  updates build a new :class:`VNodeRing` rather than mutating in place.

Every placement decision is differentially pinned: :class:`VNodeRing`
places records bit-identically to :class:`repro.naming.ConsistentHashRing`
(same :func:`~repro.naming.consistent_hash.ring_point` construction, same
bisect-successor semantics, same collision nudge), and
``tests/test_resolution_service.py`` checks service placements, replica
sets, and rebalance outcomes against brute-force recomputation across
randomized churn sequences.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.addressing.address import Address
from repro.core.resolution import ResolutionRecord
from repro.core.sloppy_groups import SloppyGrouping
from repro.naming.consistent_hash import ring_point
from repro.naming.hashspace import (
    HASH_BITS,
    HASH_SPACE,
    common_prefix_length,
    in_clockwise_interval,
)
from repro.naming.names import FlatName
from repro.utils.validation import require_positive

__all__ = [
    "GroupContactIndex",
    "RebalanceReport",
    "ShardedResolutionService",
    "VNodeRing",
    "naive_successors",
]


class VNodeRing:
    """An immutable consistent-hash ring with virtual nodes.

    Tokens live in one sorted flat list with a parallel owner list, so a
    successor lookup is a single :func:`bisect.bisect_left` (the mutable
    :class:`~repro.naming.ConsistentHashRing` keeps the same sorted-point
    structure; this class adds immutability and incremental updates).
    Construction inserts servers in sorted order with the same
    deterministic collision nudge, so the token set -- and therefore every
    placement -- is bit-identical to the oracle ring built over
    ``sorted(servers)``.

    Membership updates (:meth:`with_server` / :meth:`without_server`)
    return a *new* ring sharing nothing mutable with the old one.  The
    incremental merge path is taken only when no collision nudge is
    involved on either side; any nudge falls back to a full from-scratch
    build, so incremental and from-scratch construction always agree
    (pinned by the differential suite).
    """

    __slots__ = ("_tokens", "_owners", "_server_tokens", "_virtual_nodes", "_nudged")

    def __init__(self, servers: Iterable[int] = (), *, virtual_nodes: int = 1) -> None:
        require_positive("virtual_nodes", virtual_nodes)
        self._virtual_nodes = virtual_nodes
        point_owner: dict[int, int] = {}
        server_tokens: dict[int, tuple[int, ...]] = {}
        nudged = False
        for server in sorted(set(servers)):
            points: list[int] = []
            for replica in range(virtual_nodes):
                point = ring_point(server, replica)
                while point in point_owner:
                    point = (point + 1) % HASH_SPACE
                    nudged = True
                point_owner[point] = server
                points.append(point)
            server_tokens[server] = tuple(points)
        self._tokens: list[int] = sorted(point_owner)
        self._owners: list[int] = [point_owner[token] for token in self._tokens]
        self._server_tokens = server_tokens
        self._nudged = nudged

    # -- accessors -----------------------------------------------------------

    @property
    def servers(self) -> frozenset[int]:
        """The ring membership."""
        return frozenset(self._server_tokens)

    @property
    def virtual_nodes(self) -> int:
        """Ring tokens per server."""
        return self._virtual_nodes

    @property
    def tokens(self) -> tuple[int, ...]:
        """All ring tokens in sorted order."""
        return tuple(self._tokens)

    def tokens_of(self, server: int) -> tuple[int, ...]:
        """The tokens owned by ``server`` (in replica order, not sorted)."""
        return self._server_tokens[server]

    def __len__(self) -> int:
        return len(self._server_tokens)

    def __contains__(self, server: int) -> bool:
        return server in self._server_tokens

    # -- lookups -------------------------------------------------------------

    def successor(self, key: int) -> int:
        """The server owning ``key``: first token at or clockwise of it.

        Raises
        ------
        LookupError
            If the ring has no servers.
        """
        if not self._tokens:
            raise LookupError("virtual-node ring has no servers")
        index = bisect.bisect_left(self._tokens, key % HASH_SPACE)
        if index == len(self._tokens):
            index = 0
        return self._owners[index]

    def successors(self, key: int, count: int) -> tuple[int, ...]:
        """Up to ``count`` distinct servers clockwise of ``key``, owner first."""
        require_positive("count", count)
        if not self._tokens:
            raise LookupError("virtual-node ring has no servers")
        owners = self._owners
        total = len(owners)
        index = bisect.bisect_left(self._tokens, key % HASH_SPACE)
        result: list[int] = []
        for offset in range(total):
            server = owners[(index + offset) % total]
            if server not in result:
                result.append(server)
                if len(result) == count:
                    break
        return tuple(result)

    # -- immutable membership updates ---------------------------------------

    def with_server(self, server: int) -> "VNodeRing":
        """A new ring with ``server`` added (``self`` if already present)."""
        if server in self._server_tokens:
            return self
        fresh_points: list[int] = []
        for replica in range(self._virtual_nodes):
            fresh_points.append(ring_point(server, replica))
        collision = (
            self._nudged
            or len(set(fresh_points)) != len(fresh_points)
            or any(self._token_exists(point) for point in fresh_points)
        )
        if collision:
            return VNodeRing(
                list(self._server_tokens) + [server],
                virtual_nodes=self._virtual_nodes,
            )
        ring = VNodeRing.__new__(VNodeRing)
        ring._virtual_nodes = self._virtual_nodes
        ring._nudged = False
        tokens = list(self._tokens)
        owners = list(self._owners)
        for point in sorted(fresh_points):
            index = bisect.bisect_left(tokens, point)
            tokens.insert(index, point)
            owners.insert(index, server)
        ring._tokens = tokens
        ring._owners = owners
        ring._server_tokens = {**self._server_tokens, server: tuple(fresh_points)}
        return ring

    def without_server(self, server: int) -> "VNodeRing":
        """A new ring with ``server`` removed.

        Raises
        ------
        KeyError
            If the server is not on the ring.
        """
        if server not in self._server_tokens:
            raise KeyError(server)
        remaining = [s for s in self._server_tokens if s != server]
        if self._nudged:
            # A nudge anywhere means token positions depend on the build
            # order; only a from-scratch rebuild is guaranteed to match one.
            return VNodeRing(remaining, virtual_nodes=self._virtual_nodes)
        ring = VNodeRing.__new__(VNodeRing)
        ring._virtual_nodes = self._virtual_nodes
        ring._nudged = False
        dead = set(self._server_tokens[server])
        ring._tokens = [t for t in self._tokens if t not in dead]
        ring._owners = [o for o in self._owners if o != server]
        ring._server_tokens = {
            s: points for s, points in self._server_tokens.items() if s != server
        }
        return ring

    def _token_exists(self, point: int) -> bool:
        index = bisect.bisect_left(self._tokens, point)
        return index < len(self._tokens) and self._tokens[index] == point

    def affected_arcs(
        self, server: int, replicas: int
    ) -> list[tuple[int, int]] | None:
        """Hash arcs whose ``replicas``-way successor set includes ``server``.

        A key's replica set changes when ``server`` joins or leaves exactly
        when ``server`` is among the key's first ``replicas`` distinct
        clockwise owners *on the ring that contains the server* (the new
        ring for a join, the old ring for a leave).  For each of the
        server's tokens ``t`` this walks counter-clockwise until ``replicas``
        distinct other owners (or another of the server's own tokens) have
        been passed; keys in the clockwise arc ``(start, t]`` -- start
        exclusive, matching bisect successor semantics -- are exactly the
        affected ones.  Returns ``None`` when every key is affected (the
        membership is no larger than the replication factor, or an arc
        wraps the whole ring).

        The rebalance scan filter is pinned exact (not just conservative)
        by the differential suite: arc-filtered recomputation must equal
        brute-force recomputation of every placement.
        """
        require_positive("replicas", replicas)
        if server not in self._server_tokens:
            raise KeyError(server)
        others = len(self._server_tokens) - 1
        if others < replicas:
            return None
        tokens, owners = self._tokens, self._owners
        total = len(tokens)
        arcs: list[tuple[int, int]] = []
        for i, owner in enumerate(owners):
            if owner != server:
                continue
            seen: set[int] = set()
            j = (i - 1) % total
            steps = 0
            start = None
            while steps < total:
                other = owners[j]
                if other == server:
                    start = tokens[j]
                    break
                seen.add(other)
                if len(seen) >= replicas:
                    start = tokens[j]
                    break
                j = (j - 1) % total
                steps += 1
            if start is None:
                return None
            arcs.append((start, tokens[i]))
        return arcs


def _arcs_contain(arcs: list[tuple[int, int]] | None, key: int) -> bool:
    """Whether ``key`` lies in any clockwise arc (``None`` = whole ring)."""
    if arcs is None:
        return True
    return any(
        in_clockwise_interval(key, start, end, inclusive_end=True)
        for start, end in arcs
    )


@dataclass(frozen=True)
class RebalanceReport:
    """What one shard join/leave cost the service.

    Attributes
    ----------
    shard:
        The shard that joined or left.
    kind:
        ``"join"`` or ``"leave"``.
    scanned:
        Records whose hash fell in the affected arcs (candidates for a
        placement change); the whole table when ``whole_ring`` is set.
    moved_copies:
        Record copies created on shards that did not previously hold them.
    lost_records:
        Records dropped entirely because their only copy lived on a shard
        that left unannounced (``lost=True``); they return at the owner's
        next soft-state refresh, which is the staleness window the
        resolution scenarios measure.
    arcs:
        Number of affected hash arcs (one per token of the shard).
    whole_ring:
        True when the arc filter degenerated to a full scan.
    """

    shard: int
    kind: str
    scanned: int
    moved_copies: int
    lost_records: int
    arcs: int
    whole_ring: bool


class ShardedResolutionService:
    """r-way replicated name→address storage on the landmark shards.

    Parameters
    ----------
    shards:
        Initial shard ids (the landmark set, in Disco's use).
    virtual_nodes:
        Ring tokens per shard (the §4.5 load-smoothing knob).
    replicas:
        Distinct successor shards holding each record.  ``1`` reproduces
        the paper's single-home placement: the home shard of every name
        then matches :meth:`LandmarkResolutionDatabase.home_landmark`
        bit-for-bit.
    refresh_interval:
        Soft-state refresh period t; records time out after ``2t + 1``
        exactly as in the converged model.
    """

    def __init__(
        self,
        shards: Iterable[int],
        *,
        virtual_nodes: int = 1,
        replicas: int = 1,
        refresh_interval: float = 10.0,
    ) -> None:
        shard_list = sorted(set(shards))
        if not shard_list:
            raise ValueError("resolution service requires at least one shard")
        require_positive("replicas", replicas)
        require_positive("refresh_interval", refresh_interval)
        self._ring = VNodeRing(shard_list, virtual_nodes=virtual_nodes)
        self._replicas = replicas
        self._refresh_interval = float(refresh_interval)
        self._records: dict[FlatName, ResolutionRecord] = {}
        self._placements: dict[FlatName, tuple[int, ...]] = {}
        self._shard_counts: dict[int, int] = {shard: 0 for shard in shard_list}

    # -- configuration accessors --------------------------------------------

    @property
    def ring(self) -> VNodeRing:
        """The current (immutable) placement ring."""
        return self._ring

    @property
    def shards(self) -> list[int]:
        """Current shard ids (sorted)."""
        return sorted(self._shard_counts)

    @property
    def replicas(self) -> int:
        """Distinct successor shards per record."""
        return self._replicas

    @property
    def refresh_interval(self) -> float:
        """The soft-state refresh period t."""
        return self._refresh_interval

    @property
    def timeout(self) -> float:
        """The soft-state timeout 2t + 1."""
        return 2.0 * self._refresh_interval + 1.0

    def __len__(self) -> int:
        return len(self._records)

    # -- placement -----------------------------------------------------------

    def compute_placement(self, name: FlatName) -> tuple[int, ...]:
        """The replica set the current ring assigns to ``name``, home first."""
        return self._ring.successors(name.hash_value, self._replicas)

    def placement_of(self, name: FlatName) -> tuple[int, ...]:
        """The *stored* replica set of ``name`` (KeyError if absent)."""
        return self._placements[name]

    def home_shard(self, name: FlatName) -> int:
        """The shard owning ``name``'s hash (the paper's home landmark)."""
        return self._ring.successor(name.hash_value)

    # -- storage -------------------------------------------------------------

    def insert(
        self, name: FlatName, address: Address, *, now: float = 0.0
    ) -> tuple[int, ...]:
        """Insert/refresh the record for ``name``; returns its replica set.

        A refresh of a live record never reshuffles placement: the ring is
        keyed by the name's hash only, so re-inserting recomputes the same
        replica set unless the membership changed in between (the property
        the soft-state tests pin).
        """
        placement = self.compute_placement(name)
        self._set_placement(name, placement)
        self._records[name] = ResolutionRecord(
            name=name, address=address, inserted_at=now
        )
        return placement

    def populate(
        self,
        names: Iterable[FlatName],
        addresses: Iterable[Address],
        *,
        now: float = 0.0,
    ) -> None:
        """Bulk-insert (name, address) pairs (converged-state construction)."""
        for name, address in zip(names, addresses):
            self.insert(name, address, now=now)

    def lookup(self, name: FlatName, *, now: float | None = None) -> Address | None:
        """The stored address for ``name``, or None if absent or stale.

        With ``now`` given, a record past its ``2t + 1`` window is *not
        served* even if a lazy expiry sweep has not dropped it yet -- the
        service never serves staler than the oracle database would store.
        """
        record = self.lookup_record(name, now=now)
        return record.address if record is not None else None

    def lookup_record(
        self, name: FlatName, *, now: float | None = None
    ) -> ResolutionRecord | None:
        """The full stored record for ``name``, or None if absent or stale."""
        record = self._records.get(name)
        if record is None:
            return None
        if now is not None and record.inserted_at < now - self.timeout:
            return None
        return record

    def expire_older_than(self, now: float) -> int:
        """Drop records past the ``2t + 1`` timeout; returns count dropped."""
        cutoff = now - self.timeout
        stale = [
            name
            for name, record in self._records.items()
            if record.inserted_at < cutoff
        ]
        for name in stale:
            del self._records[name]
            self._drop_placement(name)
        return len(stale)

    # -- membership churn ----------------------------------------------------

    def add_shard(self, shard: int) -> RebalanceReport:
        """Add ``shard`` and rebalance only the affected hash arcs."""
        if shard in self._shard_counts:
            return RebalanceReport(
                shard=shard,
                kind="join",
                scanned=0,
                moved_copies=0,
                lost_records=0,
                arcs=0,
                whole_ring=False,
            )
        new_ring = self._ring.with_server(shard)
        arcs = new_ring.affected_arcs(shard, self._replicas)
        self._ring = new_ring
        self._shard_counts[shard] = 0
        scanned = moved = 0
        for name in self._affected_names(arcs):
            scanned += 1
            old = self._placements[name]
            new = self.compute_placement(name)
            if new != old:
                moved += len(set(new) - set(old))
                self._set_placement(name, new)
        return RebalanceReport(
            shard=shard,
            kind="join",
            scanned=scanned,
            moved_copies=moved,
            lost_records=0,
            arcs=0 if arcs is None else len(arcs),
            whole_ring=arcs is None,
        )

    def remove_shard(self, shard: int, *, lost: bool = True) -> RebalanceReport:
        """Remove ``shard``; rebalance the arcs it served.

        With ``lost=True`` (a crash / unannounced leave) the copies the
        shard held vanish: records with surviving replicas re-replicate
        from the survivors, records whose *only* copy lived there are
        dropped until their owner's next soft-state refresh re-inserts
        them.  ``lost=False`` models a graceful drain where every copy is
        handed off first.

        Raises
        ------
        KeyError
            If the shard is not a member.
        ValueError
            If it is the last shard.
        """
        if shard not in self._shard_counts:
            raise KeyError(shard)
        if len(self._shard_counts) == 1:
            raise ValueError("cannot remove the last resolution shard")
        arcs = self._ring.affected_arcs(shard, self._replicas)
        self._ring = self._ring.without_server(shard)
        scanned = moved = dropped = 0
        for name in self._affected_names(arcs):
            scanned += 1
            old = self._placements[name]
            survivors = set(old) - {shard}
            if lost and not survivors:
                del self._records[name]
                self._drop_placement(name)
                dropped += 1
                continue
            new = self.compute_placement(name)
            moved += len(set(new) - survivors)
            self._set_placement(name, new)
        self._shard_counts.pop(shard)
        return RebalanceReport(
            shard=shard,
            kind="leave",
            scanned=scanned,
            moved_copies=moved,
            lost_records=dropped,
            arcs=0 if arcs is None else len(arcs),
            whole_ring=arcs is None,
        )

    # -- state accounting ----------------------------------------------------

    def entries_at(self, shard: int) -> int:
        """Record copies stored at ``shard`` (0 for non-members)."""
        return self._shard_counts.get(shard, 0)

    def load_distribution(self) -> dict[int, int]:
        """Record copies per shard (the §4.5 load-imbalance view).

        With ``replicas=1`` this matches
        :meth:`LandmarkResolutionDatabase.load_distribution` exactly.
        """
        return dict(self._shard_counts)

    # -- internals -----------------------------------------------------------

    def _affected_names(
        self, arcs: list[tuple[int, int]] | None
    ) -> list[FlatName]:
        """Stored names in the affected arcs, in deterministic ring order."""
        return [
            name
            for name in sorted(self._records)
            if _arcs_contain(arcs, name.hash_value)
        ]

    def _set_placement(self, name: FlatName, placement: tuple[int, ...]) -> None:
        old = self._placements.get(name, ())
        for shard in old:
            self._shard_counts[shard] -= 1
        for shard in placement:
            self._shard_counts[shard] += 1
        self._placements[name] = placement

    def _drop_placement(self, name: FlatName) -> None:
        for shard in self._placements.pop(name):
            if shard in self._shard_counts:
                self._shard_counts[shard] -= 1


class GroupContactIndex:
    """Bisect-backed sloppy-group contact selection (§4.4 served live).

    :meth:`SloppyGrouping.best_group_contact` scans every vicinity member
    per query; a serving process answers the same question with one bisect
    into the member list sorted by hash.  The longest-prefix-match winners
    form a contiguous run around the query hash's insertion point (they
    share the maximal prefix interval), so the scan for the
    ``(distance, node)`` tie-break touches only that run.  Results are
    bit-identical to the oracle (pinned by the differential suite).

    Candidate mappings are indexed lazily per source node and assumed
    stable for the index lifetime (vicinities are converged state).
    """

    def __init__(self, grouping: SloppyGrouping) -> None:
        self._grouping = grouping
        self._tables: dict[
            int, tuple[list[int], list[int], Mapping[int, float]]
        ] = {}

    @property
    def grouping(self) -> SloppyGrouping:
        """The converged grouping this index serves."""
        return self._grouping

    def best_contact(
        self,
        source: int,
        target: int,
        candidates: Mapping[int, float],
    ) -> int | None:
        """The vicinity member most likely to know ``target``'s address.

        Same contract as :meth:`SloppyGrouping.best_group_contact`:
        longest hash-prefix match with h(target), ties broken by smaller
        distance then smaller node id; None for no candidates.
        """
        if not candidates:
            return None
        table = self._tables.get(source)
        if table is None:
            pairs = sorted(
                (self._grouping.hash_of(node), node) for node in candidates
            )
            table = ([h for h, _ in pairs], [n for _, n in pairs], candidates)
            self._tables[source] = table
        hashes, nodes, distances = table
        target_hash = self._grouping.hash_of(target)
        position = bisect.bisect_left(hashes, target_hash)
        best_match = -1
        for neighbor in (position - 1, position):
            if 0 <= neighbor < len(hashes):
                best_match = max(
                    best_match,
                    common_prefix_length(hashes[neighbor], target_hash),
                )
        if best_match < 0:
            return None
        if best_match == 0:
            lo, hi = 0, len(hashes)
        else:
            shift = HASH_BITS - best_match
            low_value = (target_hash >> shift) << shift
            lo = bisect.bisect_left(hashes, low_value)
            hi = bisect.bisect_left(hashes, low_value + (1 << shift))
        best: tuple[float, int] | None = None
        for index in range(lo, hi):
            node = nodes[index]
            key = (distances[node], node)
            if best is None or key < best:
                best = key
        return best[1] if best is not None else None


def naive_successors(
    servers: Sequence[int],
    key: int,
    count: int,
    *,
    virtual_nodes: int = 1,
) -> tuple[int, ...]:
    """Brute-force successor computation: the full-scan placement oracle.

    Recomputes every ring point with :func:`ring_point`, sorts all of them
    by clockwise distance from ``key``, and collects the first ``count``
    distinct owners.  Quadratic and allocation-happy by design -- this is
    the reference the service's bisect ring is differentially pinned
    against (and the "before" side of the ``resolution_scaling`` bench
    family).  Ignores the (astronomically unlikely) token-collision nudge,
    which the differential suite separately forces and checks.
    """
    require_positive("count", count)
    points: list[tuple[int, int]] = []
    for server in sorted(set(servers)):
        for replica in range(virtual_nodes):
            points.append((ring_point(server, replica), server))
    if not points:
        raise LookupError("no servers")
    key %= HASH_SPACE
    points.sort(key=lambda pair: ((pair[0] - key) % HASH_SPACE, pair[0]))
    result: list[int] = []
    for _, server in points:
        if server not in result:
            result.append(server)
            if len(result) == count:
                break
    return tuple(result)
