"""The scheme-lifetime router cache, homed in the serving process.

The perf harness measured (PR 5) that caching landmark-SPT path
extractions for the lifetime of a converged scheme is worth ~1.6x on the
routing-heavy scenarios, but deferred the cache because no long-lived
process existed to own it.  The resolution service is that process: under
Zipf-popular lookup traffic the same ``(serving shard, requester)`` path
extractions repeat constantly, and the traffic engine bills every hop
count through this cache.

The cache is a byte-budgeted exact LRU, mirroring the artifact-lifecycle
discipline of :mod:`repro.scenarios.lifecycle`: deterministic eviction
(least recently used first), a hard byte budget, and observable stats.
Determinism matters because cache *contents* never influence results --
only hit/miss accounting -- and the traffic engine's serial-vs-sharded
byte-identity includes the per-segment cache stats.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING

from repro.utils.validation import require_positive

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.nddisco import NDDiscoRouting

__all__ = ["RouterCache"]

#: Accounting cost of one cached path: list header + per-hop slot.  An
#: estimate (CPython object overheads vary by build), but a *stable* one,
#: so budgets and eviction points are reproducible everywhere.
_ENTRY_BASE_BYTES = 56
_PER_HOP_BYTES = 8


class RouterCache:
    """Byte-budgeted LRU over landmark-SPT path extractions.

    Parameters
    ----------
    max_bytes:
        Hard budget for cached path payloads (accounted with the stable
        per-entry estimate above, not CPython ``sys.getsizeof``).  The
        cache never exceeds it: inserting a path evicts least-recently
        used entries first, and a path larger than the whole budget is
        returned uncached.
    """

    def __init__(self, *, max_bytes: int = 1 << 20) -> None:
        require_positive("max_bytes", max_bytes)
        self._max_bytes = max_bytes
        self._paths: OrderedDict[tuple[int, int], list[int]] = OrderedDict()
        self._bytes = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # -- accessors -----------------------------------------------------------

    @property
    def max_bytes(self) -> int:
        """The byte budget."""
        return self._max_bytes

    @property
    def current_bytes(self) -> int:
        """Accounted bytes currently cached."""
        return self._bytes

    def __len__(self) -> int:
        return len(self._paths)

    def stats(self) -> dict[str, int]:
        """Counters: hits, misses, evictions, entries, bytes, max_bytes."""
        return {
            "hits": self._hits,
            "misses": self._misses,
            "evictions": self._evictions,
            "entries": len(self._paths),
            "bytes": self._bytes,
            "max_bytes": self._max_bytes,
        }

    # -- the cached operation ------------------------------------------------

    def landmark_path(
        self, routing: "NDDiscoRouting", landmark: int, node: int
    ) -> list[int]:
        """``routing.landmark_path(landmark, node)``, cached for this scheme.

        The returned list is shared with the cache -- treat it as
        immutable, exactly like the converged tables it is read from.
        """
        key = (landmark, node)
        cached = self._paths.get(key)
        if cached is not None:
            self._hits += 1
            self._paths.move_to_end(key)
            return cached
        self._misses += 1
        path = routing.landmark_path(landmark, node)
        cost = _ENTRY_BASE_BYTES + _PER_HOP_BYTES * len(path)
        if cost > self._max_bytes:
            return path
        while self._bytes + cost > self._max_bytes:
            _, evicted = self._paths.popitem(last=False)
            self._bytes -= _ENTRY_BASE_BYTES + _PER_HOP_BYTES * len(evicted)
            self._evictions += 1
        self._paths[key] = path
        self._bytes += cost
        return path

    def clear(self) -> None:
        """Drop every cached path (stats counters are kept)."""
        self._paths.clear()
        self._bytes = 0
