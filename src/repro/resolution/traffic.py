"""Seeded lookup traffic against the sharded resolution service.

The paper evaluates converged state; what it never measures is the
*serving* behaviour of the §4.3 database under load: how far a lookup
travels, how stale a served record can be under shard churn, and how
evenly the shards carry Zipf-skewed popularity.  This module generates
that workload and bills it against a converged
:class:`~repro.core.nddisco.NDDiscoRouting` substrate.

Workload model (:func:`generate_lookup_workload`):

* **popularity** -- lookup targets are Zipf-distributed over a seeded
  random permutation of the nodes (rank 1 is a random node, not node 0);
* **diurnal phase** -- per-tick lookup volume follows
  ``1 + A sin(2pi t / duration)``;
* **flash crowd** -- an optional ``[start, end)`` tick window multiplies
  the volume by a boost factor;
* lookups are allocated to ticks by largest remainder and drawn from
  :func:`~repro.utils.randomness.make_rng` streams, so the workload is a
  pure function of its arguments.

Serving model (:func:`run_traffic`), per tick: shard churn events apply
first (ring rebalance), then the soft-state refresh (expire + re-insert
every name at multiples of t), then the tick's lookups.  A lookup tries
the requester's sloppy group first (when a :class:`GroupContactIndex` is
supplied), then the ring: among the replicas holding a fresh copy it
queries the one closest to the requester, billing the landmark-SPT
distance as latency and the (router-cache-mediated) SPT path length as
hops.  A record whose shards crashed is a *miss* until the owner's next
refresh -- the staleness/availability story the scenarios measure.

Sharding: lookups never mutate the service, so the engine shards over
*tick ranges*: a segment replays service evolution from tick 0 (cheap,
deterministic) and bills only its own ticks; concatenating segment
reports in order reproduces the serial report byte-for-byte.
"""

from __future__ import annotations

import bisect
import math
from array import array
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.dynamics.calendar import EventCalendar
from repro.dynamics.stream import DynEvent
from repro.resolution.cache import RouterCache
from repro.resolution.service import (
    GroupContactIndex,
    RebalanceReport,
    ShardedResolutionService,
)
from repro.utils.randomness import make_rng
from repro.utils.validation import require_positive

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.nddisco import NDDiscoRouting

__all__ = [
    "LookupWorkload",
    "TrafficReport",
    "generate_lookup_workload",
    "run_traffic",
]


@dataclass(frozen=True)
class LookupWorkload:
    """A generated lookup trace: parallel flat arrays in tick order.

    ``ticks`` is non-decreasing; ``targets[i]``/``requesters[i]`` are node
    ids with ``requesters[i] != targets[i]``.
    """

    num_nodes: int
    duration_ticks: int
    seed: int
    ticks: array
    targets: array
    requesters: array

    @property
    def num_lookups(self) -> int:
        """Total lookups in the trace."""
        return len(self.ticks)


def generate_lookup_workload(
    num_nodes: int,
    *,
    num_lookups: int,
    duration_ticks: int,
    seed: int = 0,
    zipf_exponent: float = 0.9,
    diurnal_amplitude: float = 0.5,
    flash: tuple[int, int, float] | None = None,
) -> LookupWorkload:
    """Generate a seeded Zipf/diurnal/flash-crowd lookup trace.

    Parameters
    ----------
    num_nodes:
        Node-id space (>= 2; requesters are drawn uniformly, never equal
        to the target).
    num_lookups:
        Total lookups, allocated to ticks by largest remainder over the
        diurnal/flash intensity profile.
    duration_ticks:
        Timeline length; one diurnal period spans the whole timeline.
    seed:
        Root seed; the trace is a pure function of all arguments.
    zipf_exponent:
        Popularity skew s in ``weight(rank) = rank^-s``.
    diurnal_amplitude:
        A in the ``1 + A sin`` volume profile (0 disables it; < 1 keeps
        the profile positive).
    flash:
        Optional ``(start_tick, end_tick, boost)`` flash-crowd window.
    """
    if num_nodes < 2:
        raise ValueError(f"need >= 2 nodes for lookups, got {num_nodes}")
    require_positive("num_lookups", num_lookups)
    require_positive("duration_ticks", duration_ticks)
    require_positive("zipf_exponent", zipf_exponent)
    if not 0.0 <= diurnal_amplitude < 1.0:
        raise ValueError(
            f"diurnal_amplitude must be in [0, 1), got {diurnal_amplitude}"
        )
    if flash is not None:
        start, end, boost = flash
        if not 0 <= start < end <= duration_ticks:
            raise ValueError(f"flash window {flash!r} outside the timeline")
        if boost <= 0:
            raise ValueError(f"flash boost must be > 0, got {boost}")

    # Per-tick volume: largest-remainder allocation over the intensity
    # profile, so the per-tick counts sum exactly to num_lookups.
    intensity: list[float] = []
    for tick in range(duration_ticks):
        value = 1.0 + diurnal_amplitude * math.sin(
            2.0 * math.pi * tick / duration_ticks
        )
        if flash is not None and flash[0] <= tick < flash[1]:
            value *= flash[2]
        intensity.append(value)
    total_intensity = sum(intensity)
    shares = [num_lookups * value / total_intensity for value in intensity]
    counts = [int(share) for share in shares]
    remainders = sorted(
        range(duration_ticks),
        key=lambda tick: (counts[tick] - shares[tick], tick),
    )
    for tick in remainders[: num_lookups - sum(counts)]:
        counts[tick] += 1

    # Popularity: Zipf over a seeded permutation of the node ids.
    permutation = list(range(num_nodes))
    make_rng(seed, "resolution-traffic/popularity").shuffle(permutation)
    cumulative: list[float] = []
    running = 0.0
    for rank in range(num_nodes):
        running += (rank + 1) ** -zipf_exponent
        cumulative.append(running)

    rng_targets = make_rng(seed, "resolution-traffic/targets")
    rng_requesters = make_rng(seed, "resolution-traffic/requesters")
    ticks = array("q")
    targets = array("q")
    requesters = array("q")
    for tick in range(duration_ticks):
        for _ in range(counts[tick]):
            draw = rng_targets.random() * running
            rank = min(bisect.bisect_left(cumulative, draw), num_nodes - 1)
            target = permutation[rank]
            requester = rng_requesters.randrange(num_nodes)
            while requester == target:
                requester = rng_requesters.randrange(num_nodes)
            ticks.append(tick)
            targets.append(target)
            requesters.append(requester)
    return LookupWorkload(
        num_nodes=num_nodes,
        duration_ticks=duration_ticks,
        seed=seed,
        ticks=ticks,
        targets=targets,
        requesters=requesters,
    )


@dataclass(frozen=True)
class TrafficReport:
    """Billed outcomes of one traffic run (or one tick-range segment).

    ``latencies`` covers every billed lookup; ``staleness`` only ring
    hits (served age in ticks); ``hops`` only ring lookups (SPT path
    edges between the serving -- or, on a miss, home -- shard and the
    requester).  ``shard_loads`` counts ring hits served per shard.
    """

    lookups: int
    group_hits: int
    ring_hits: int
    misses: int
    latencies: tuple[float, ...]
    staleness: tuple[float, ...]
    hops: tuple[int, ...]
    shard_loads: dict[int, int]
    expired_records: int
    rebalances: tuple[RebalanceReport, ...]
    cache_stats: dict[str, int]
    bill_ticks: tuple[int, int]

    @staticmethod
    def merge(segments: Sequence["TrafficReport"]) -> "TrafficReport":
        """Concatenate tick-range segments (in order) into one report.

        Equal to the serial report over the union range by construction:
        segments bill disjoint contiguous tick ranges of one deterministic
        replay, so concatenation in range order is the serial bill.
        """
        if not segments:
            raise ValueError("merge() of no segments")
        ordered = sorted(segments, key=lambda report: report.bill_ticks)
        loads: dict[int, int] = {}
        cache: dict[str, int] = {}
        for report in ordered:
            for shard, count in report.shard_loads.items():
                loads[shard] = loads.get(shard, 0) + count
            for key, value in report.cache_stats.items():
                if key == "max_bytes":
                    cache[key] = value
                else:
                    cache[key] = cache.get(key, 0) + value
        return TrafficReport(
            lookups=sum(r.lookups for r in ordered),
            group_hits=sum(r.group_hits for r in ordered),
            ring_hits=sum(r.ring_hits for r in ordered),
            misses=sum(r.misses for r in ordered),
            latencies=tuple(
                value for r in ordered for value in r.latencies
            ),
            staleness=tuple(
                value for r in ordered for value in r.staleness
            ),
            hops=tuple(value for r in ordered for value in r.hops),
            shard_loads=loads,
            expired_records=sum(r.expired_records for r in ordered),
            rebalances=tuple(
                report for r in ordered for report in r.rebalances
            ),
            cache_stats=cache,
            bill_ticks=(
                ordered[0].bill_ticks[0],
                ordered[-1].bill_ticks[1],
            ),
        )


def run_traffic(
    routing: "NDDiscoRouting",
    workload: LookupWorkload,
    *,
    replicas: int = 1,
    virtual_nodes: int = 1,
    refresh_interval: int = 16,
    shard_events: Sequence[DynEvent] = (),
    contacts: GroupContactIndex | None = None,
    cache_budget: int = 1 << 20,
    bill_ticks: tuple[int, int] | None = None,
) -> TrafficReport:
    """Serve ``workload`` against ``routing``'s landmark shards.

    Parameters
    ----------
    routing:
        The converged substrate: provides names, addresses, landmark-SPT
        distances/paths (latency and hop billing), and vicinities (group
        contacts).
    replicas, virtual_nodes, refresh_interval:
        Service configuration (see :class:`ShardedResolutionService`).
    shard_events:
        ``node-leave`` / ``node-join`` :class:`DynEvent` s naming landmark
        shards, ordered through an :class:`EventCalendar`; a leave is an
        unannounced crash (copies lost), a join re-adds the shard.
    contacts:
        Optional sloppy-group contact index; when given, lookups whose
        best vicinity contact stores the target's address are served from
        the group at vicinity distance, never reaching the ring.
    cache_budget:
        Byte budget of the per-run :class:`RouterCache` billing hop
        counts.
    bill_ticks:
        Half-open tick range ``[lo, hi)`` to bill (default: the whole
        timeline).  Service evolution is always replayed from tick 0, so
        a segment's bill is independent of how the timeline is split.
    """
    require_positive("refresh_interval", refresh_interval)
    names = routing.names
    num_nodes = len(names)
    if workload.num_nodes != num_nodes:
        raise ValueError(
            f"workload spans {workload.num_nodes} nodes, "
            f"substrate has {num_nodes}"
        )
    duration = workload.duration_ticks
    if bill_ticks is None:
        bill_ticks = (0, duration)
    bill_lo, bill_hi = bill_ticks
    if not 0 <= bill_lo < bill_hi <= duration:
        raise ValueError(f"bill_ticks {bill_ticks!r} outside the timeline")

    landmarks = sorted(routing.landmarks)
    service = ShardedResolutionService(
        landmarks,
        virtual_nodes=virtual_nodes,
        replicas=replicas,
        refresh_interval=float(refresh_interval),
    )
    addresses = routing.addresses
    service.populate(names, addresses, now=0.0)

    calendar = EventCalendar()
    for event in shard_events:
        if event.kind not in ("node-leave", "node-join"):
            raise ValueError(
                f"shard events must be node-leave/node-join, got {event.kind!r}"
            )
        if event.u not in routing.landmarks:
            raise ValueError(f"shard event names non-landmark {event.u}")
        if event.tick >= duration:
            raise ValueError(
                f"shard event at tick {event.tick} beyond the timeline"
            )
        calendar.schedule(event)
    next_event = calendar.pop()

    cache = RouterCache(max_bytes=cache_budget)
    vicinities = routing.vicinities
    grouping = contacts.grouping if contacts is not None else None

    latencies: list[float] = []
    staleness: list[float] = []
    hops: list[int] = []
    shard_loads: dict[int, int] = {}
    group_hits = ring_hits = misses = 0
    expired = 0
    rebalances: list[RebalanceReport] = []

    ticks = workload.ticks
    targets = workload.targets
    requesters = workload.requesters
    total_lookups = len(ticks)
    index = 0
    for tick in range(bill_hi):
        billed_tick = tick >= bill_lo
        # 1. shard churn (ring rebalance).
        while next_event is not None and next_event.tick == tick:
            if next_event.kind == "node-leave":
                if next_event.u in service.ring and len(service.ring) > 1:
                    report = service.remove_shard(next_event.u, lost=True)
                    if billed_tick:
                        rebalances.append(report)
            else:
                if next_event.u not in service.ring:
                    report = service.add_shard(next_event.u)
                    if billed_tick:
                        rebalances.append(report)
            next_event = calendar.pop()
        # 2. soft-state refresh: expire, then every owner re-inserts.
        if tick > 0 and tick % refresh_interval == 0:
            dropped = service.expire_older_than(float(tick))
            if billed_tick:
                expired += dropped
            service.populate(names, addresses, now=float(tick))
        # 3. the tick's lookups.
        while index < total_lookups and ticks[index] == tick:
            if not billed_tick:
                index += 1
                continue
            target = targets[index]
            requester = requesters[index]
            index += 1
            if contacts is not None:
                distances = vicinities[requester].distances
                contact = contacts.best_contact(requester, target, distances)
                if contact is not None and grouping.stores_address_of(
                    contact, target
                ):
                    group_hits += 1
                    latencies.append(distances[contact])
                    continue
            name = names[target]
            record = service.lookup_record(name, now=float(tick))
            if record is None:
                misses += 1
                home = service.home_shard(name)
                latencies.append(routing.landmark_distance(home, requester))
                hops.append(len(cache.landmark_path(routing, home, requester)) - 1)
                continue
            placement = service.placement_of(name)
            serving = min(
                placement,
                key=lambda shard: (
                    routing.landmark_distance(shard, requester),
                    shard,
                ),
            )
            ring_hits += 1
            latencies.append(routing.landmark_distance(serving, requester))
            staleness.append(float(tick) - record.inserted_at)
            shard_loads[serving] = shard_loads.get(serving, 0) + 1
            hops.append(
                len(cache.landmark_path(routing, serving, requester)) - 1
            )
    return TrafficReport(
        lookups=group_hits + ring_hits + misses,
        group_hits=group_hits,
        ring_hits=ring_hits,
        misses=misses,
        latencies=tuple(latencies),
        staleness=tuple(staleness),
        hops=tuple(hops),
        shard_loads=dict(sorted(shard_loads.items())),
        expired_records=expired,
        rebalances=tuple(rebalances),
        cache_stats=cache.stats(),
        bill_ticks=(bill_lo, bill_hi),
    )
