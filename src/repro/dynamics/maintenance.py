"""Incremental maintenance cost of a topology change.

When a link fails or recovers, Disco does not reconverge from scratch:

* path vector repairs the affected landmark and vicinity routes;
* nodes whose closest landmark or landmark-tree path changed get a new
  *address*, refresh their soft-state record in the resolution database, and
  re-announce the address over the dissemination overlay (one announcement
  reaches the Θ(√(n log n)) members of the sloppy group over a
  constant-degree overlay, so it costs on the order of the group size in
  overlay messages);
* everything else is untouched.

:func:`maintenance_cost` quantifies this by diffing the converged state
before and after a change and charging exactly those updates, giving the
"cost of one event" number that the churn experiment compares against full
reconvergence (the Fig. 8 cost).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.nddisco import NDDiscoRouting
from repro.core.sloppy_groups import SloppyGrouping

__all__ = ["MaintenanceCost", "maintenance_cost"]


@dataclass(frozen=True)
class MaintenanceCost:
    """The incremental cost of one topology change.

    Attributes
    ----------
    addresses_changed:
        Nodes whose address (closest landmark or landmark-tree path) changed.
    landmark_set_changed:
        Whether the landmark set itself differs (only under landmark churn).
    resolution_updates:
        Soft-state records that must be refreshed at their home landmarks
        (one per changed address).
    dissemination_messages:
        Overlay messages needed to re-announce the changed addresses to their
        sloppy groups (changed addresses x group size, the dominant term).
    vicinity_entries_changed:
        Total routing-table entries (vicinity members added, removed, or with
        a different distance) across all nodes -- the path-vector repair work.
    landmark_entries_changed:
        Landmark-route entries whose distance changed across all nodes.
    total_incremental_entries:
        Sum of the routing-entry and announcement work above: the quantity to
        compare against the full-reconvergence entry count from Fig. 8.
    """

    addresses_changed: int
    landmark_set_changed: bool
    resolution_updates: int
    dissemination_messages: int
    vicinity_entries_changed: int
    landmark_entries_changed: int

    @property
    def total_incremental_entries(self) -> int:
        """Total logical updates exchanged to absorb the change."""
        return (
            self.resolution_updates
            + self.dissemination_messages
            + self.vicinity_entries_changed
            + self.landmark_entries_changed
        )


def _mean_group_size(grouping: SloppyGrouping) -> float:
    sizes = grouping.group_sizes()
    return sum(sizes.values()) / max(len(sizes), 1)


def maintenance_cost(
    before: NDDiscoRouting,
    after: NDDiscoRouting,
    *,
    grouping: SloppyGrouping | None = None,
) -> MaintenanceCost:
    """Diff two converged NDDisco states and charge the incremental updates.

    Parameters
    ----------
    before, after:
        Converged protocol state on the topology before and after the change.
        They must cover the same node set (node churn is modelled as edge
        churn of the node's links, keeping ids stable).
    grouping:
        The sloppy grouping used to size re-announcements; defaults to a
        grouping over ``after``'s names with the true n.
    """
    n_before = before.topology.num_nodes
    n_after = after.topology.num_nodes
    if n_before != n_after:
        raise ValueError(
            f"before/after node counts differ ({n_before} vs {n_after}); "
            "model node churn as edge churn with stable node ids"
        )
    if grouping is None:
        grouping = SloppyGrouping(after.names)

    addresses_changed = 0
    for node in range(n_after):
        old = before.address_of(node)
        new = after.address_of(node)
        if old.landmark != new.landmark or old.route.path != new.route.path:
            addresses_changed += 1

    landmark_set_changed = before.landmarks != after.landmarks

    # Vicinity repair: entries added, removed, or re-costed.
    vicinity_entries_changed = 0
    for node in range(n_after):
        old_table = before.vicinities[node].distances
        new_table = after.vicinities[node].distances
        keys = set(old_table) | set(new_table)
        for member in keys:
            if member == node:
                continue
            if old_table.get(member) != new_table.get(member):
                vicinity_entries_changed += 1

    # Landmark-route repair: distance changes toward any landmark.
    landmark_entries_changed = 0
    shared_landmarks = before.landmarks & after.landmarks
    for landmark in shared_landmarks:
        for node in range(n_after):
            if before.landmark_distance(landmark, node) != after.landmark_distance(
                landmark, node
            ):
                landmark_entries_changed += 1
    # Routes to appearing/disappearing landmarks are all new/withdrawn state.
    changed_landmarks = before.landmarks ^ after.landmarks
    landmark_entries_changed += len(changed_landmarks) * n_after

    group_size = _mean_group_size(grouping)
    dissemination_messages = int(round(addresses_changed * group_size))

    return MaintenanceCost(
        addresses_changed=addresses_changed,
        landmark_set_changed=landmark_set_changed,
        resolution_updates=addresses_changed,
        dissemination_messages=dissemination_messages,
        vicinity_entries_changed=vicinity_entries_changed,
        landmark_entries_changed=landmark_entries_changed,
    )
