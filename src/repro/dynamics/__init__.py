"""Network dynamics: the event-driven churn engine and its replay oracle.

The paper evaluates messaging "during initial convergence only, leaving
continuous churn to future work" (§5.2), but the protocol design is full of
machinery for dynamics: soft-state resolution records, landmark hysteresis,
consistent sloppy grouping, and an overlay whose dissemination keeps address
state fresh.  This package provides the future-work piece:

* :mod:`repro.dynamics.churn` -- seed-era reproducible churn workloads
  (connectivity-preserving edge failures / recoveries) applied to a
  topology; preserved as the replay oracle's event source.
* :mod:`repro.dynamics.stream` -- richer seeded event streams (edge
  up/down/reweight, node leave/join, partitions) on a tick timeline.
* :mod:`repro.dynamics.calendar` -- the flat-array Dial bucket-queue event
  calendar the discrete-event engine drains.
* :mod:`repro.dynamics.engine` -- :class:`ChurnEngine`, which maintains the
  converged NDDisco substrate *incrementally* per event (affected-subtree
  SPT repair, closest-landmark refold, candidate-only vicinity recompute)
  with state bit-identical to full reconvergence.
* :mod:`repro.dynamics.maintenance` -- the incremental cost of one topology
  change: which addresses change, how many resolution records must be
  refreshed, how many sloppy-group dissemination messages that triggers, and
  how much routing state (landmark + vicinity entries) is affected --
  compared against the cost of reconverging from scratch.  The engine
  charges the same bill without ever diffing full states.
"""

from repro.dynamics.calendar import EventCalendar
from repro.dynamics.churn import ChurnEvent, ChurnWorkload, generate_churn_workload
from repro.dynamics.engine import ChurnEngine, DirtyState, EventReport
from repro.dynamics.maintenance import MaintenanceCost, maintenance_cost
from repro.dynamics.stream import (
    EVENT_KINDS,
    DynEvent,
    events_from_workload,
    generate_event_stream,
)

__all__ = [
    "EVENT_KINDS",
    "ChurnEngine",
    "ChurnEvent",
    "ChurnWorkload",
    "DirtyState",
    "DynEvent",
    "EventCalendar",
    "EventReport",
    "MaintenanceCost",
    "events_from_workload",
    "generate_churn_workload",
    "generate_event_stream",
    "maintenance_cost",
]
