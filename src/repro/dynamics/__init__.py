"""Network dynamics: churn workloads and incremental-maintenance cost.

The paper evaluates messaging "during initial convergence only, leaving
continuous churn to future work" (§5.2), but the protocol design is full of
machinery for dynamics: soft-state resolution records, landmark hysteresis,
consistent sloppy grouping, and an overlay whose dissemination keeps address
state fresh.  This package provides the future-work piece:

* :mod:`repro.dynamics.churn` -- reproducible churn workloads (edge and node
  failures / recoveries) applied to a topology.
* :mod:`repro.dynamics.maintenance` -- the incremental cost of one topology
  change: which addresses change, how many resolution records must be
  refreshed, how many sloppy-group dissemination messages that triggers, and
  how much routing state (landmark + vicinity entries) is affected --
  compared against the cost of reconverging from scratch.
"""

from repro.dynamics.churn import ChurnEvent, ChurnWorkload, generate_churn_workload
from repro.dynamics.maintenance import MaintenanceCost, maintenance_cost

__all__ = [
    "ChurnEvent",
    "ChurnWorkload",
    "MaintenanceCost",
    "generate_churn_workload",
    "maintenance_cost",
]
