"""Flat-array event calendar: a Dial bucket queue over integer ticks.

The discrete-event engine needs a pending-event structure with three
properties: O(1) schedule, O(1) amortized pop in timestamp order, and a
*deterministic* total order (ascending tick, FIFO within a tick) so that
replaying the same stream always applies events identically.

This reuses the Dial bucket-queue idiom from the graph kernels
(:mod:`repro.graphs.csr`): because ticks are exact integers, a circular
ring of buckets indexed ``tick % capacity`` replaces a comparison heap.
Events live in parallel flat arrays (kind codes, endpoints, weights,
ticks) appended once and never moved; each ring slot holds the head/tail
of an intrusive linked list threaded through a ``next`` array, giving
FIFO order within a bucket without any per-event allocation.  The ring
doubles (entries re-threaded by index order, which preserves FIFO) when a
scheduled tick falls outside the current horizon.
"""

from __future__ import annotations

from repro.dynamics.stream import EVENT_KINDS, DynEvent
from repro.utils.validation import require_positive

__all__ = ["EventCalendar"]

_KIND_CODES = {kind: code for code, kind in enumerate(EVENT_KINDS)}


class EventCalendar:
    """Dial bucket queue of :class:`DynEvent` keyed by integer tick."""

    __slots__ = (
        "_kinds",
        "_u",
        "_v",
        "_weights",
        "_ticks",
        "_next",
        "_heads",
        "_tails",
        "_cursor",
        "_pending",
        "_popped",
    )

    def __init__(self, *, horizon: int = 64) -> None:
        require_positive("horizon", horizon)
        self._kinds: list[int] = []
        self._u: list[int] = []
        self._v: list[int] = []
        self._weights: list[float] = []
        self._ticks: list[int] = []
        self._next: list[int] = []
        self._heads: list[int] = [-1] * horizon
        self._tails: list[int] = [-1] * horizon
        self._cursor = 0  # next tick to inspect; min over pending ticks
        self._pending = 0
        self._popped: list[int] = []  # per-entry consumed flag (0/1)

    def __len__(self) -> int:
        return self._pending

    def __bool__(self) -> bool:
        return self._pending > 0

    @property
    def current_tick(self) -> int:
        """The tick the pop cursor is at (lower bound on pending ticks)."""
        return self._cursor

    def schedule(self, event: DynEvent) -> int:
        """Enqueue ``event``; return its entry index (stable handle)."""
        if event.tick < self._cursor:
            raise ValueError(
                f"cannot schedule event at tick {event.tick}: calendar "
                f"already advanced to tick {self._cursor}"
            )
        # Grow BEFORE appending: _grow re-threads every unconsumed entry,
        # and threading the new entry both there and below would create a
        # self-loop in the ``next`` chain (the bucket then replays one
        # event until the pending count drains, losing every later event).
        if event.tick - self._cursor >= len(self._heads):
            self._grow(event.tick)
        index = len(self._ticks)
        self._kinds.append(_KIND_CODES[event.kind])
        self._u.append(event.u)
        self._v.append(event.v)
        self._weights.append(event.weight)
        self._ticks.append(event.tick)
        self._next.append(-1)
        self._popped.append(0)
        slot = event.tick % len(self._heads)
        tail = self._tails[slot]
        if tail < 0:
            self._heads[slot] = index
        else:
            self._next[tail] = index
        self._tails[slot] = index
        self._pending += 1
        return index

    def extend(self, events) -> None:
        """Schedule every event of an iterable."""
        for event in events:
            self.schedule(event)

    def _grow(self, furthest_tick: int) -> None:
        capacity = len(self._heads)
        while furthest_tick - self._cursor >= capacity:
            capacity *= 2
        heads = [-1] * capacity
        tails = [-1] * capacity
        # Re-thread every unconsumed entry in index order: entries were
        # appended in schedule order, so per-bucket FIFO survives the move.
        for index, tick in enumerate(self._ticks):
            if self._popped[index]:
                continue
            self._next[index] = -1
            slot = tick % capacity
            if tails[slot] < 0:
                heads[slot] = index
            else:
                self._next[tails[slot]] = index
            tails[slot] = index
        self._heads = heads
        self._tails = tails

    def pop(self) -> DynEvent | None:
        """Remove and return the earliest pending event (FIFO within tick).

        Returns ``None`` when the calendar is empty.
        """
        if self._pending == 0:
            return None
        capacity = len(self._heads)
        scanned = 0
        while scanned <= capacity:
            slot = self._cursor % capacity
            index = self._heads[slot]
            # The ring wraps, so a slot may hold events for a future lap;
            # events are bucketed FIFO and ticks never decrease within a
            # chain, so only the head needs its tick checked.
            if index >= 0 and self._ticks[index] == self._cursor:
                self._heads[slot] = self._next[index]
                if self._heads[slot] < 0:
                    self._tails[slot] = -1
                self._pending -= 1
                self._popped[index] = 1
                return DynEvent(
                    tick=self._ticks[index],
                    kind=EVENT_KINDS[self._kinds[index]],
                    u=self._u[index],
                    v=self._v[index],
                    weight=self._weights[index],
                )
            self._cursor += 1
            scanned += 1
        raise RuntimeError("event calendar ring is inconsistent")

    def drain(self):
        """Yield every pending event in (tick, schedule-order) order."""
        while True:
            event = self.pop()
            if event is None:
                return
            yield event
