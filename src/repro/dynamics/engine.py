"""Event-driven churn engine: incremental substrate maintenance.

The seed-era dynamics path ("replay") models one topology event by building
a *fully reconverged* :class:`~repro.core.nddisco.NDDiscoRouting` on the
mutated topology and diffing it against the previous state
(:func:`~repro.dynamics.maintenance.maintenance_cost`).  That is the
paper's accounting, but it costs a full |L|-SPT + n-vicinity rebuild per
event.

:class:`ChurnEngine` maintains the same converged state *incrementally*:

* **Landmark SPT rows** are repaired per event with the affected-subtree
  algorithms of :mod:`repro.graphs.incremental` -- an event that does not
  touch a row's tree arc costs O(1) on that row.
* **Closest landmarks** are refolded only for nodes whose distance to some
  landmark changed (ascending landmark order, strict ``<``, matching
  :func:`repro.core.landmarks.closest_landmarks`).
* **Vicinities** are recomputed only for *candidate* nodes -- those whose
  current vicinity radius reaches an event endpoint (old-graph distances
  for failures/increases, new-graph for recoveries/decreases).  Every
  non-candidate's vicinity is provably bit-identical before and after.
* **Addresses** (closest landmark + landmark-tree path) are re-derived
  only for nodes whose closest landmark changed or that are new-tree
  descendants of a parent change inside their closest landmark's row.

Because the SPT repairs and vicinity recomputes go through the canonical
search kernels, the resulting state is bit-identical to a from-scratch
rebuild on the mutated topology, and the :class:`MaintenanceCost` charged
per event equals the full before/after state diff the replay oracle
computes -- the differential tests in ``tests/test_dynamics_incremental.py``
assert both.

Unlike the converged-state classes, the engine survives partitions: its
rows use ``inf`` / ``-1`` for unreachable nodes, a node with no reachable
landmark has ``closest == -1`` and address ``None``, and node leave/join
events capture and restore incident edges with stable node ids.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.landmarks import select_landmarks
from repro.core.sloppy_groups import SloppyGrouping
from repro.core.vicinity import VicinityTable, compute_vicinity, vicinity_size
from repro.dynamics.calendar import EventCalendar
from repro.dynamics.maintenance import MaintenanceCost, _mean_group_size
from repro.dynamics.stream import DynEvent
from repro.graphs.incremental import (
    repair_after_decrease,
    repair_after_detach,
    repair_after_increase,
    spt_dense,
)
from repro.graphs.topology import Topology
from repro.naming.names import name_for_node

__all__ = ["EventReport", "DirtyState", "ChurnEngine"]

_INF = math.inf

#: Relative slack for the vicinity-candidate tests.  Those tests compare
#: *endpoint-rooted* distances (one Dijkstra per event endpoint) against
#: quantities from each node's own *x-rooted* search (its vicinity radius,
#: its view of an edge's tightness).  On irregular-float graphs the two
#: root orders sum the same path's weights in opposite order, so they can
#: disagree by a few ulps; a candidate test with exact comparisons would
#: then wrongly exclude a node whose own search sees the boundary as tight.
#: The margin is ~1e5 times any achievable accumulation error (paths of h
#: hops carry at most ~2*h*2**-52 relative rounding error) while staying
#: far below any genuine slack, and over-inclusion is harmless: an extra
#: candidate recomputes an identical row and bills zero.
_REL_SLACK = 1e-9

_ZERO_COST = MaintenanceCost(
    addresses_changed=0,
    landmark_set_changed=False,
    resolution_updates=0,
    dissemination_messages=0,
    vicinity_entries_changed=0,
    landmark_entries_changed=0,
)


@dataclass(frozen=True)
class EventReport:
    """What one event cost to absorb.

    Attributes
    ----------
    event:
        The event applied.
    applied:
        False when the event was a graceful no-op (edge event at a dead
        node or missing edge, duplicate leave/join, reweight to the same
        weight); no state changes and ``cost`` is all zeros.
    cost:
        The incremental maintenance bill, identical to what
        :func:`~repro.dynamics.maintenance.maintenance_cost` would charge
        for the full before/after state diff.
    rows_repaired:
        Landmark SPT rows that had at least one distance or parent change.
    vicinities_recomputed:
        Candidate nodes whose vicinity was re-derived (an upper bound on
        the nodes whose vicinity actually changed).
    """

    event: DynEvent
    applied: bool
    cost: MaintenanceCost = field(default=_ZERO_COST)
    rows_repaired: int = 0
    vicinities_recomputed: int = 0

    @property
    def protocol_messages(self) -> int:
        """Logical protocol messages exchanged to absorb the event."""
        return self.cost.total_incremental_entries


@dataclass(frozen=True)
class DirtyState:
    """Accumulated state changes since the last :meth:`ChurnEngine.take_dirty`.

    The change sets a :class:`~repro.core.tables.SubstrateTables` snapshot
    needs to catch up with the engine (see
    :func:`repro.core.substrate_build.apply_maintenance`): per-landmark SPT
    entries touched, closest-landmark entries refolded, vicinities
    recomputed, and addresses re-derived.
    """

    rows: dict[int, set[int]]
    closest: set[int]
    vicinities: set[int]
    addresses: set[int]

    def __bool__(self) -> bool:
        return bool(
            self.rows or self.closest or self.vicinities or self.addresses
        )


class ChurnEngine:
    """Converged NDDisco substrate state under incremental maintenance."""

    def __init__(
        self,
        topology: Topology,
        *,
        seed: int = 0,
        landmarks=None,
        vicinity_k: int | None = None,
    ) -> None:
        self._topology = topology.copy()
        n = topology.num_nodes
        self._num_nodes = n
        self._seed = seed
        if landmarks is None:
            landmarks = select_landmarks(n, seed=seed)
        self._landmarks: list[int] = sorted(landmarks)
        self._k = vicinity_k if vicinity_k is not None else vicinity_size(n)
        self._names = [name_for_node(node) for node in range(n)]
        self._group_size = _mean_group_size(SloppyGrouping(self._names))
        self._dead: set[int] = set()
        self._captured: dict[int, list[tuple[int, int, float]]] = {}
        self._reset_dirty()
        self._rows: dict[int, tuple[list[float], list[int]]] = {
            landmark: spt_dense(self._topology, landmark)
            for landmark in self._landmarks
        }
        self._vicinities: list[VicinityTable] = [
            compute_vicinity(self._topology, node, self._k) for node in range(n)
        ]
        self._closest: list[int] = [-1] * n
        self._closest_dist: list[float] = [_INF] * n
        for node in range(n):
            self._refold_closest(node)
        self._addresses: list[tuple[int, tuple[int, ...]] | None] = [
            self._derive_address(node) for node in range(n)
        ]
        self._reset_dirty()

    def _reset_dirty(self) -> None:
        self._dirty_rows: dict[int, set[int]] = {}
        self._dirty_closest: set[int] = set()
        self._dirty_vicinities: set[int] = set()
        self._dirty_addresses: set[int] = set()

    def take_dirty(self) -> DirtyState:
        """Return and clear the change sets accumulated since the last call."""
        dirty = DirtyState(
            rows=self._dirty_rows,
            closest=self._dirty_closest,
            vicinities=self._dirty_vicinities,
            addresses=self._dirty_addresses,
        )
        self._reset_dirty()
        return dirty

    @classmethod
    def from_routing(cls, routing) -> "ChurnEngine":
        """Adopt the converged state of an :class:`NDDiscoRouting` instance.

        Requires a connected topology (the converged classes' dense rows
        use a ``0.0`` fill for unreachable nodes, which is only unambiguous
        when every node is reachable).  The resulting engine state is
        bit-identical to building from scratch, without recomputing any
        search.
        """
        if not routing.topology.is_connected():
            raise ValueError(
                "from_routing requires a connected topology; build the "
                "engine from scratch instead"
            )
        engine = cls.__new__(cls)
        engine._topology = routing.topology.copy()
        n = routing.topology.num_nodes
        engine._num_nodes = n
        engine._seed = 0
        engine._landmarks = sorted(routing.landmarks)
        engine._k = vicinity_size(n)
        engine._names = list(routing.names)
        engine._group_size = _mean_group_size(SloppyGrouping(engine._names))
        engine._dead = set()
        engine._captured = {}
        engine._rows = {
            landmark: (list(dist_row), list(parent_row))
            for landmark, (dist_row, parent_row) in routing.landmark_spts.items()
        }
        engine._vicinities = [
            VicinityTable(
                node=node,
                distances=dict(vicinity.distances),
                predecessors=dict(vicinity.predecessors),
            )
            for node, vicinity in enumerate(routing.vicinities)
        ]
        closest_row, closest_dist_row = routing.closest_landmark_rows
        engine._closest = list(closest_row)
        engine._closest_dist = list(closest_dist_row)
        engine._addresses = [
            (address.landmark, tuple(address.route.path))
            for address in routing.addresses
        ]
        engine._reset_dirty()
        return engine

    # -- read-only state accessors ------------------------------------------

    @property
    def topology(self) -> Topology:
        """The current (mutated) topology; treat as read-only."""
        return self._topology

    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    @property
    def landmarks(self) -> set[int]:
        """The (fixed) landmark set, as a copy."""
        return set(self._landmarks)

    @property
    def vicinity_k(self) -> int:
        """The vicinity size target k."""
        return self._k

    @property
    def dead_nodes(self) -> set[int]:
        """Nodes currently departed (isolated, edges captured), as a copy."""
        return set(self._dead)

    @property
    def vicinities(self) -> list[VicinityTable]:
        """Per-node vicinity tables (indexed by node id); read-only."""
        return self._vicinities

    @property
    def addresses(self) -> list[tuple[int, tuple[int, ...]] | None]:
        """Per-node ``(closest landmark, landmark-tree path)``; read-only.

        ``None`` for nodes with no reachable landmark.
        """
        return self._addresses

    def landmark_row(self, landmark: int) -> tuple[list[float], list[int]]:
        """Dense ``(dist, parent)`` row for one landmark; read-only."""
        return self._rows[landmark]

    @property
    def closest_landmark_rows(self) -> tuple[list[int], list[float]]:
        """Per-node closest landmark and distance; read-only.

        Unreachable nodes hold ``-1`` / ``inf`` (the converged classes
        assume connectivity and cannot represent this case).
        """
        return self._closest, self._closest_dist

    def state_signature(self):
        """Hashable snapshot of the full converged state, for differentials."""
        return (
            tuple(
                (landmark, tuple(dist), tuple(parent))
                for landmark, (dist, parent) in sorted(self._rows.items())
            ),
            tuple(self._closest),
            tuple(self._closest_dist),
            tuple(
                tuple(sorted(vicinity.distances.items()))
                for vicinity in self._vicinities
            ),
            tuple(self._addresses),
        )

    # -- internal maintenance helpers ---------------------------------------

    def _refold_closest(self, node: int) -> bool:
        best_landmark = -1
        best_distance = _INF
        for landmark in self._landmarks:
            distance = self._rows[landmark][0][node]
            if distance < best_distance:
                best_distance = distance
                best_landmark = landmark
        if (
            best_landmark == self._closest[node]
            and best_distance == self._closest_dist[node]
        ):
            return False
        self._closest[node] = best_landmark
        self._closest_dist[node] = best_distance
        self._dirty_closest.add(node)
        return True

    def _derive_address(self, node: int):
        landmark = self._closest[node]
        if landmark < 0:
            return None
        parent_row = self._rows[landmark][1]
        path = [node]
        while path[-1] != landmark:
            pred = parent_row[path[-1]]
            if pred < 0:
                return None
            path.append(pred)
        path.reverse()
        return (landmark, tuple(path))

    def _repair_rows(self, repair) -> dict[int, tuple[list[int], list[int]]]:
        """Run one repair primitive over every landmark row."""
        changes: dict[int, tuple[list[int], list[int]]] = {}
        for landmark in self._landmarks:
            dist, parent = self._rows[landmark]
            dist_changed, parent_changed = repair(landmark, dist, parent)
            if dist_changed or parent_changed:
                changes[landmark] = (dist_changed, parent_changed)
        return changes

    def _vicinity_radius(self, node: int) -> float:
        """The candidate threshold R_x: last-member distance, or inf when
        the vicinity is component-limited (fewer than k members)."""
        vicinity = self._vicinities[node]
        if len(vicinity.distances) < min(self._k, self._num_nodes):
            return _INF
        return max(vicinity.distances.values())

    def _vicinity_candidates(
        self,
        endpoint_rows: list[list[float]],
        *,
        tight: float | None = None,
    ) -> list[int]:
        """Nodes whose vicinity may change: radius reaches an endpoint.

        For edge events ``tight`` is the edge weight in the graph the
        ``endpoint_rows`` were computed on (old graph for increase-type
        events, new graph for decrease-type), and the filter sharpens in
        two sound ways:

        * the edge must be *tight* from the node's view:
          ``min(d(x,u), d(x,v)) + w == max(d(x,u), d(x,v))``.  A slack edge
          lies on no shortest path from ``x`` and contributes no tight
          predecessor arc, so neither the distance multiset nor the
          canonical predecessors of ``x``'s truncated search can change --
          the only arc whose tightness the event can alter is ``(u, v)``
          itself, and for a slack-arc node it stays slack on both sides of
          the event;
        * the *far* endpoint must lie within the radius:
          ``min(d(x,u), d(x,v)) + w <= R_x``.  Every change to ``x``'s row
          -- a member distance routed through the edge, a membership swap
          it causes, or the ``(u, v)`` arc flipping a canonical
          predecessor -- requires a path from ``x`` through the *whole*
          edge to a node at most ``R_x`` away, and any such path already
          costs ``min(d(x,u), d(x,v)) + w`` to clear the far endpoint.

        Nodes that reach neither endpoint in the judged graph are skipped
        for the same reason: the event happens outside their component.
        Both tests carry a :data:`_REL_SLACK` margin because the endpoint
        rows are root-ordered differently from each node's own search (see
        the constant's note); the margin only ever *adds* candidates.
        """
        candidates = []
        if tight is not None:
            row_u, row_v = endpoint_rows
            for node in range(self._num_nodes):
                du = row_u[node]
                dv = row_v[node]
                if du <= dv:
                    near, far = du, dv
                else:
                    near, far = dv, du
                if near == _INF or abs(near + tight - far) > _REL_SLACK * far:
                    continue
                radius = self._vicinity_radius(node)
                if radius < _INF:
                    radius += _REL_SLACK * radius
                if near + tight <= radius:
                    candidates.append(node)
            return candidates
        for node in range(self._num_nodes):
            radius = self._vicinity_radius(node)
            if radius < _INF:
                radius += _REL_SLACK * radius
            for row in endpoint_rows:
                if row[node] <= radius:
                    candidates.append(node)
                    break
        return candidates

    def _patch_vicinities(self, candidates) -> int:
        entries_changed = 0
        for node in candidates:
            new_vicinity = compute_vicinity(self._topology, node, self._k)
            old_vicinity = self._vicinities[node]
            old_distances = old_vicinity.distances
            new_distances = new_vicinity.distances
            node_changes = 0
            for member in set(old_distances) | set(new_distances):
                if member == node:
                    continue
                if old_distances.get(member) != new_distances.get(member):
                    node_changes += 1
            entries_changed += node_changes
            if (
                node_changes
                or dict(old_vicinity.predecessors)
                != dict(new_vicinity.predecessors)
            ):
                self._dirty_vicinities.add(node)
            self._vicinities[node] = new_vicinity
        return entries_changed

    def _patch_addresses(self, changes) -> int:
        """Refold closest landmarks and re-derive dirty addresses.

        ``changes`` maps landmark -> (dist_changed, parent_changed).  A
        node's address is dirty when its closest landmark changed, or when
        it is a new-tree descendant of a parent change inside its closest
        landmark's row (walking its address path would traverse the changed
        pointer).
        """
        touched: set[int] = set()
        for dist_changed, _ in changes.values():
            touched.update(dist_changed)
        dirty: set[int] = set()
        for node in touched:
            if self._refold_closest(node):
                dirty.add(node)
        for landmark, (_, parent_changed) in changes.items():
            if not parent_changed:
                continue
            parent_row = self._rows[landmark][1]
            children: list[list[int]] = [[] for _ in range(self._num_nodes)]
            for node in range(self._num_nodes):
                pred = parent_row[node]
                if pred >= 0:
                    children[pred].append(node)
            stack = list(parent_changed)
            seen = set(stack)
            while stack:
                node = stack.pop()
                if self._closest[node] == landmark:
                    dirty.add(node)
                for child in children[node]:
                    if child not in seen:
                        seen.add(child)
                        stack.append(child)
        addresses_changed = 0
        for node in sorted(dirty):
            address = self._derive_address(node)
            if address != self._addresses[node]:
                self._addresses[node] = address
                self._dirty_addresses.add(node)
                addresses_changed += 1
        return addresses_changed

    def _bill(
        self, event: DynEvent, changes, addresses_changed: int,
        vicinity_entries: int, candidates,
    ) -> EventReport:
        for landmark, (dist_changed, parent_changed) in changes.items():
            row_dirty = self._dirty_rows.setdefault(landmark, set())
            row_dirty.update(dist_changed)
            row_dirty.update(parent_changed)
        landmark_entries = sum(
            len(dist_changed) for dist_changed, _ in changes.values()
        )
        cost = MaintenanceCost(
            addresses_changed=addresses_changed,
            landmark_set_changed=False,
            resolution_updates=addresses_changed,
            dissemination_messages=int(
                round(addresses_changed * self._group_size)
            ),
            vicinity_entries_changed=vicinity_entries,
            landmark_entries_changed=landmark_entries,
        )
        return EventReport(
            event=event,
            applied=True,
            cost=cost,
            rows_repaired=len(changes),
            vicinities_recomputed=len(candidates),
        )

    # -- event application --------------------------------------------------

    def apply(self, event: DynEvent) -> EventReport:
        """Apply one event; return its maintenance bill.

        Infeasible events (edge events touching a dead node or a missing /
        already-present edge, leave of a dead node, join of a live one,
        reweight to the current weight) are graceful no-ops -- the
        message-level behavior of a node that receives a stale or duplicate
        update -- reported with ``applied=False``.
        """
        kind = event.kind
        if kind in ("edge-down", "edge-up", "edge-reweight"):
            return self._apply_edge_event(event)
        if kind == "node-leave":
            return self._apply_leave(event)
        if kind == "node-join":
            return self._apply_join(event)
        raise ValueError(f"unknown event kind {kind!r}")

    def _noop(self, event: DynEvent) -> EventReport:
        return EventReport(event=event, applied=False)

    def _apply_edge_event(self, event: DynEvent) -> EventReport:
        u, v = event.edge
        if u > v:
            u, v = v, u
        if u in self._dead or v in self._dead or u == v:
            return self._noop(event)
        if not (0 <= u < self._num_nodes and 0 <= v < self._num_nodes):
            return self._noop(event)
        kind = event.kind
        if kind == "edge-down":
            if not self._topology.has_edge(u, v):
                return self._noop(event)
            old_rows = [
                spt_dense(self._topology, u)[0],
                spt_dense(self._topology, v)[0],
            ]
            old_weight = self._topology.remove_edge(u, v)
            changes = self._repair_rows(
                lambda root, dist, parent: repair_after_increase(
                    self._topology, dist, parent, root, u, v
                )
            )
            candidates = self._vicinity_candidates(old_rows, tight=old_weight)
        elif kind == "edge-up":
            if self._topology.has_edge(u, v) or event.weight <= 0:
                return self._noop(event)
            self._topology.add_edge(u, v, event.weight)
            changes = self._repair_rows(
                lambda root, dist, parent: repair_after_decrease(
                    self._topology, dist, parent, root, u, v
                )
            )
            new_rows = [
                spt_dense(self._topology, u)[0],
                spt_dense(self._topology, v)[0],
            ]
            candidates = self._vicinity_candidates(
                new_rows, tight=self._topology.edge_weight(u, v)
            )
        else:  # edge-reweight
            if not self._topology.has_edge(u, v) or event.weight <= 0:
                return self._noop(event)
            old_weight = self._topology.edge_weight(u, v)
            new_weight = float(event.weight)
            if new_weight == old_weight:
                return self._noop(event)
            if new_weight > old_weight:
                old_rows = [
                    spt_dense(self._topology, u)[0],
                    spt_dense(self._topology, v)[0],
                ]
                self._topology.set_edge_weight(u, v, new_weight)
                changes = self._repair_rows(
                    lambda root, dist, parent: repair_after_increase(
                        self._topology, dist, parent, root, u, v
                    )
                )
                candidates = self._vicinity_candidates(
                    old_rows, tight=old_weight
                )
            else:
                self._topology.set_edge_weight(u, v, new_weight)
                changes = self._repair_rows(
                    lambda root, dist, parent: repair_after_decrease(
                        self._topology, dist, parent, root, u, v
                    )
                )
                new_rows = [
                    spt_dense(self._topology, u)[0],
                    spt_dense(self._topology, v)[0],
                ]
                candidates = self._vicinity_candidates(
                    new_rows, tight=new_weight
                )
        vicinity_entries = self._patch_vicinities(candidates)
        addresses_changed = self._patch_addresses(changes)
        return self._bill(
            event, changes, addresses_changed, vicinity_entries, candidates
        )

    def _apply_leave(self, event: DynEvent) -> EventReport:
        node = event.u
        if not 0 <= node < self._num_nodes or node in self._dead:
            return self._noop(event)
        old_row = spt_dense(self._topology, node)[0]
        incident = sorted(
            (node, neighbor, weight)
            for neighbor, weight in self._topology.adjacency[node]
        )
        for _, neighbor, _ in incident:
            self._topology.remove_edge(node, neighbor)
        self._captured[node] = incident
        self._dead.add(node)
        changes = self._repair_rows(
            lambda root, dist, parent: repair_after_detach(
                self._topology, dist, parent, root, node
            )
        )
        candidates = self._vicinity_candidates([old_row])
        vicinity_entries = self._patch_vicinities(candidates)
        addresses_changed = self._patch_addresses(changes)
        return self._bill(
            event, changes, addresses_changed, vicinity_entries, candidates
        )

    def _apply_join(self, event: DynEvent) -> EventReport:
        node = event.u
        if node not in self._dead:
            return self._noop(event)
        self._dead.discard(node)
        restored: list[tuple[int, float]] = []
        for _, neighbor, weight in self._captured.pop(node, []):
            if neighbor in self._dead:
                # The far endpoint left after we did; it now owns the edge
                # and will restore it when it rejoins.
                self._captured.setdefault(neighbor, []).append(
                    (neighbor, node, weight)
                )
                self._captured[neighbor].sort()
            else:
                restored.append((neighbor, weight))
        # Multiple sequential decrease repairs can move one entry twice, so
        # exact change accounting diffs against a pre-event snapshot.
        snapshot = {
            landmark: (list(dist), list(parent))
            for landmark, (dist, parent) in self._rows.items()
        }
        touched: dict[int, set[int]] = {
            landmark: set() for landmark in self._landmarks
        }
        for neighbor, weight in restored:
            self._topology.add_edge(node, neighbor, weight)
            for landmark in self._landmarks:
                dist, parent = self._rows[landmark]
                dist_changed, parent_changed = repair_after_decrease(
                    self._topology, dist, parent, landmark, node, neighbor
                )
                touched[landmark].update(dist_changed)
                touched[landmark].update(parent_changed)
        changes: dict[int, tuple[list[int], list[int]]] = {}
        for landmark, moved in touched.items():
            if not moved:
                continue
            old_dist, old_parent = snapshot[landmark]
            dist, parent = self._rows[landmark]
            dist_changed = sorted(
                other for other in moved if dist[other] != old_dist[other]
            )
            parent_changed = sorted(
                other for other in moved if parent[other] != old_parent[other]
            )
            if dist_changed or parent_changed:
                changes[landmark] = (dist_changed, parent_changed)
        new_row = spt_dense(self._topology, node)[0]
        candidates = self._vicinity_candidates([new_row])
        vicinity_entries = self._patch_vicinities(candidates)
        addresses_changed = self._patch_addresses(changes)
        return self._bill(
            event, changes, addresses_changed, vicinity_entries, candidates
        )

    def run(self, events) -> list[EventReport]:
        """Schedule ``events`` on a calendar and absorb them in tick order."""
        calendar = EventCalendar()
        calendar.extend(events)
        return [self.apply(event) for event in calendar.drain()]
