"""Dynamic event streams: seeded edge/node churn over a live topology.

The seed-era :mod:`repro.dynamics.churn` workloads are edge-only and
connectivity-preserving by construction (the paper's fig. 8 setting).  The
event-driven engine additionally handles reweights, node leave/join, and
partitions, so this module generates richer streams while staying exactly
as reproducible: one :func:`make_rng` stream per (seed, tag), candidates
drawn from sorted containers only.

A :class:`DynEvent` is a point event on a tick timeline.  Node events name
only the node: the *engine* captures a leaving node's incident edges and
restores them on join (edges whose far endpoint is itself dead at join time
migrate to that endpoint's captured set), and the generator mirrors that
bookkeeping so its feasibility checks see the same topology the engine
will.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.dynamics.churn import ChurnEvent
from repro.graphs.topology import Topology
from repro.utils.randomness import make_rng
from repro.utils.validation import require_positive

__all__ = [
    "EVENT_KINDS",
    "DynEvent",
    "events_from_workload",
    "generate_event_stream",
]

#: All event kinds, in their canonical (encoding) order.
EVENT_KINDS = (
    "edge-down",
    "edge-up",
    "edge-reweight",
    "node-leave",
    "node-join",
)

_REWEIGHT_FACTORS = (0.5, 0.75, 1.25, 1.5, 2.0)


@dataclass(frozen=True)
class DynEvent:
    """One timestamped topology event.

    Attributes
    ----------
    tick:
        Integer timestamp; events within one tick apply in stream order.
    kind:
        One of :data:`EVENT_KINDS`.
    u, v:
        Edge endpoints for edge events (``u < v``); for node events ``u``
        is the node and ``v`` is ``-1``.
    weight:
        New/restored weight for ``edge-up`` / ``edge-reweight``; the failed
        weight (for symmetry with :class:`ChurnEvent`) on ``edge-down``;
        ``0.0`` for node events.
    """

    tick: int
    kind: str
    u: int
    v: int = -1
    weight: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {self.kind!r}")

    @property
    def edge(self) -> tuple[int, int]:
        """The affected edge for edge events."""
        if self.v < 0:
            raise ValueError(f"{self.kind} event has no edge")
        return (self.u, self.v)


def events_from_workload(
    events: Iterable[ChurnEvent], *, events_per_tick: int = 1
) -> list[DynEvent]:
    """Lift seed-era :class:`ChurnEvent` sequences onto the tick timeline."""
    require_positive("events_per_tick", events_per_tick)
    out: list[DynEvent] = []
    for index, event in enumerate(events):
        u, v = event.edge
        out.append(
            DynEvent(
                tick=index // events_per_tick,
                kind=event.kind,
                u=u,
                v=v,
                weight=event.weight,
            )
        )
    return out


def _live_connected(
    topology: Topology,
    dead: set[int],
    *,
    skip_node: int | None = None,
    skip_edge: tuple[int, int] | None = None,
) -> bool:
    """True when the live nodes (minus optional exclusions) are connected."""
    excluded = set(dead)
    if skip_node is not None:
        excluded.add(skip_node)
    live = [node for node in range(topology.num_nodes) if node not in excluded]
    if len(live) <= 1:
        return True
    banned = None
    if skip_edge is not None:
        a, b = skip_edge
        banned = (a, b) if a < b else (b, a)
    seen = {live[0]}
    frontier = [live[0]]
    while frontier:
        node = frontier.pop()
        for neighbor, _ in topology.adjacency[node]:
            if neighbor in excluded or neighbor in seen:
                continue
            if banned is not None:
                key = (node, neighbor) if node < neighbor else (neighbor, node)
                if key == banned:
                    continue
            seen.add(neighbor)
            frontier.append(neighbor)
    return len(seen) == len(live)


def generate_event_stream(
    topology: Topology,
    *,
    num_events: int,
    seed: int = 0,
    kinds: Sequence[str] = EVENT_KINDS,
    events_per_tick: int = 1,
    preserve_connectivity: bool = True,
) -> list[DynEvent]:
    """Generate a reproducible stream of ``num_events`` dynamic events.

    Parameters
    ----------
    topology:
        Connected base topology; never mutated.
    num_events:
        Stream length.
    seed:
        Deterministic RNG seed (stream = pure function of all arguments).
    kinds:
        Allowed event kinds (subset of :data:`EVENT_KINDS`).  Edge-only
        subsets produce streams on which the graph stays fully connected,
        which is what the converged-state differential tests need.
    events_per_tick:
        How many consecutive events share one tick (``> 1`` exercises the
        duplicate-events-per-tick calendar path).
    preserve_connectivity:
        When true (default), every event keeps the *live* portion of the
        graph connected: failures avoid bridges/articulation points and
        joins require a live neighbor.  ``False`` permits partitions
        (including streams that isolate every landmark).
    """
    require_positive("num_events", num_events)
    require_positive("events_per_tick", events_per_tick)
    for kind in kinds:
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {kind!r}")
    if not topology.is_connected():
        raise ValueError("event streams require a connected base topology")
    rng = make_rng(seed, "dynamics-stream")
    current = topology.copy()
    down_edges: dict[tuple[int, int], float] = {}
    captured: dict[int, list[tuple[int, int, float]]] = {}
    dead: set[int] = set()
    events: list[DynEvent] = []
    attempts = 0
    max_attempts = 80 * num_events + 200

    def live_edges() -> list[tuple[int, int]]:
        return sorted(
            (u, v)
            for u, v, _ in current.edges()
            if u not in dead and v not in dead
        )

    def pick(candidates: list) -> object | None:
        if not candidates:
            return None
        return candidates[rng.randrange(len(candidates))]

    while len(events) < num_events and attempts < max_attempts:
        attempts += 1
        kind = kinds[rng.randrange(len(kinds))]
        tick = len(events) // events_per_tick
        if kind == "edge-down":
            candidates = live_edges()
            if preserve_connectivity:
                candidates = [
                    edge
                    for edge in candidates
                    if _live_connected(current, dead, skip_edge=edge)
                ]
            edge = pick(candidates)
            if edge is None:
                continue
            u, v = edge
            weight = current.remove_edge(u, v)
            down_edges[(u, v)] = weight
            events.append(
                DynEvent(tick=tick, kind="edge-down", u=u, v=v, weight=weight)
            )
        elif kind == "edge-up":
            candidates = sorted(
                edge
                for edge in down_edges
                if edge[0] not in dead and edge[1] not in dead
            )
            edge = pick(candidates)
            if edge is None:
                continue
            u, v = edge
            weight = down_edges.pop((u, v))
            current.add_edge(u, v, weight)
            events.append(
                DynEvent(tick=tick, kind="edge-up", u=u, v=v, weight=weight)
            )
        elif kind == "edge-reweight":
            edge = pick(live_edges())
            if edge is None:
                continue
            u, v = edge
            factor = _REWEIGHT_FACTORS[rng.randrange(len(_REWEIGHT_FACTORS))]
            new_weight = current.edge_weight(u, v) * factor
            current.set_edge_weight(u, v, new_weight)
            events.append(
                DynEvent(
                    tick=tick, kind="edge-reweight", u=u, v=v, weight=new_weight
                )
            )
        elif kind == "node-leave":
            live = [
                node for node in range(current.num_nodes) if node not in dead
            ]
            candidates = [
                node
                for node in live
                if len(live) > 2
                and (
                    not preserve_connectivity
                    or _live_connected(current, dead, skip_node=node)
                )
            ]
            node = pick(candidates)
            if node is None:
                continue
            incident = sorted(
                (node, neighbor, weight)
                for neighbor, weight in current.adjacency[node]
            )
            for _, neighbor, _ in incident:
                current.remove_edge(node, neighbor)
            captured[node] = incident
            dead.add(node)
            events.append(DynEvent(tick=tick, kind="node-leave", u=node))
        else:  # node-join
            candidates = sorted(
                node
                for node in dead
                if not preserve_connectivity
                or any(
                    neighbor not in dead
                    for _, neighbor, _ in captured.get(node, ())
                )
            )
            node = pick(candidates)
            if node is None:
                continue
            dead.discard(node)
            for _, neighbor, weight in captured.pop(node, []):
                if neighbor in dead:
                    captured.setdefault(neighbor, []).append(
                        (neighbor, node, weight)
                    )
                    captured[neighbor].sort()
                else:
                    current.add_edge(node, neighbor, weight)
            events.append(DynEvent(tick=tick, kind="node-join", u=node))
    if len(events) < num_events:
        raise ValueError(
            "could not generate the requested number of events "
            f"(got {len(events)} of {num_events}) for kinds {tuple(kinds)!r}"
        )
    return events
