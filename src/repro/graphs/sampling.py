"""Node and source-destination pair sampling.

"In many cases, for large topologies, we sample a fraction of nodes or
source-destination pairs to compute state, stretch, and congestion" (§5.1).
These helpers provide that sampling deterministically from a seed, so every
experiment's sample is reproducible.
"""

from __future__ import annotations

from repro.graphs.topology import Topology
from repro.utils.randomness import make_rng
from repro.utils.validation import require_positive

__all__ = ["sample_nodes", "sample_pairs", "one_destination_per_node"]


def sample_nodes(
    topology: Topology, count: int, *, seed: int = 0
) -> list[int]:
    """Return ``count`` distinct nodes sampled uniformly (or all nodes).

    If ``count`` is at least the number of nodes, all nodes are returned in
    ascending order (so "sample everything" is exact, not random).
    """
    require_positive("count", count)
    if count >= topology.num_nodes:
        return list(topology.nodes())
    rng = make_rng(seed, "sample-nodes")
    return sorted(rng.sample(range(topology.num_nodes), count))


def sample_pairs(
    topology: Topology, count: int, *, seed: int = 0
) -> list[tuple[int, int]]:
    """Return ``count`` distinct ordered source-destination pairs (s != t)."""
    require_positive("count", count)
    n = topology.num_nodes
    if n < 2:
        raise ValueError("topology must have at least 2 nodes to sample pairs")
    max_pairs = n * (n - 1)
    rng = make_rng(seed, "sample-pairs")
    if count >= max_pairs:
        return [(s, t) for s in range(n) for t in range(n) if s != t]
    pairs: set[tuple[int, int]] = set()
    while len(pairs) < count:
        s = rng.randrange(n)
        t = rng.randrange(n)
        if s != t:
            pairs.add((s, t))
    return sorted(pairs)


def one_destination_per_node(
    topology: Topology, *, seed: int = 0
) -> list[tuple[int, int]]:
    """Return one (node, random destination) pair per node.

    This is the congestion workload of §5.2: "we have each node route to a
    random destination and count the number of times each edge is used."
    """
    n = topology.num_nodes
    if n < 2:
        raise ValueError("topology must have at least 2 nodes")
    rng = make_rng(seed, "one-dest-per-node")
    pairs = []
    for source in range(n):
        target = rng.randrange(n - 1)
        if target >= source:
            target += 1
        pairs.append((source, target))
    return pairs
