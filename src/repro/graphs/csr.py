"""Flat-array CSR shortest-path kernels.

This module is the performance substrate under every shortest-path query in
the reproduction.  A :class:`CSRGraph` is a compressed-sparse-row snapshot of
a :class:`~repro.graphs.topology.Topology`:

* ``offsets`` -- ``array('q')`` of length ``n + 1``; node ``v``'s incident
  edges live at indices ``offsets[v] .. offsets[v + 1]``.
* ``neighbors`` -- ``array('q')`` of length ``2m`` with the edge endpoints.
* ``weights`` -- ``array('d')`` of length ``2m`` with the edge weights.

On top of that snapshot sit the three Dijkstra variants the protocols need
(full single-source, *k*-nearest truncated, radius-bounded), implemented over
a preallocated scratch arena -- distance / predecessor / visited arrays that
are *generation-stamped* rather than reallocated or cleared per search, so a
batch of ``n`` searches touches no per-call O(n) setup.  When every edge
weight is exactly 1.0 the kernels automatically switch to a level-ordered BFS
that produces bit-identical results to the heap kernel while skipping all
heap traffic.

Determinism: all kernels settle nodes in ``(distance, node id)`` order and
break equal-distance predecessor ties toward the smaller predecessor id --
one shared rule across every variant (the dict-based seed implementation only
applied it to full Dijkstra; see ``dijkstra`` in
:mod:`repro.graphs._reference_paths`).

Batched drivers (:meth:`CSRGraph.batched_spt`,
:meth:`CSRGraph.batched_k_nearest`, :meth:`CSRGraph.batched_radius`,
:meth:`CSRGraph.batched_target_distances`) run many searches over the shared
arena; :func:`parallel_k_nearest` / :func:`parallel_radius` add an opt-in
``multiprocessing`` fan-out for the embarrassingly parallel per-node
vicinity and cluster builds.

The stable public API remains :mod:`repro.graphs.shortest_paths`; callers
normally obtain a kernel via :meth:`Topology.csr`, which caches the snapshot
and invalidates it when the topology mutates.
"""

from __future__ import annotations

import heapq
import math
from array import array
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.graphs.topology import Topology

__all__ = ["CSRGraph", "parallel_k_nearest", "parallel_radius"]

_INF = math.inf


class CSRGraph:
    """Compressed-sparse-row graph with a reusable search arena.

    Instances are immutable snapshots: mutate the owning
    :class:`~repro.graphs.topology.Topology` and a fresh snapshot is built on
    the next :meth:`Topology.csr` call.  The scratch arrays make a single
    instance non-reentrant -- one search at a time per ``CSRGraph`` (each
    process in a :func:`parallel_k_nearest` fan-out builds its own).
    """

    __slots__ = (
        "num_nodes",
        "offsets",
        "neighbors",
        "weights",
        "unit_weights",
        "_adj",
        "_arc",
        "_dist",
        "_pred",
        "_seen",
        "_done",
        "_generation",
    )

    def __init__(
        self,
        num_nodes: int,
        offsets: array,
        neighbors: array,
        weights: array,
        unit_weights: bool,
    ) -> None:
        self.num_nodes = num_nodes
        self.offsets = offsets
        self.neighbors = neighbors
        self.weights = weights
        self.unit_weights = unit_weights
        # Hot-loop views of the flat arrays.  CPython boxes a fresh object on
        # every ``array('q')``/``array('d')`` index, which would dominate the
        # kernel runtime, so the scan loops iterate per-node slabs of
        # ready-made ints / (neighbor, weight) tuples carved once from the
        # CSR slab here.  The heap kernel's tuple slab is only built when the
        # graph is weighted (the BFS fast path never reads weights).
        offs = offsets.tolist()
        nbrs = neighbors.tolist()
        self._adj: list[list[int]] = [
            nbrs[offs[node] : offs[node + 1]] for node in range(num_nodes)
        ]
        if unit_weights:
            self._arc: list[list[tuple[int, float]]] = []
        else:
            arcs = list(zip(nbrs, weights.tolist()))
            self._arc = [
                arcs[offs[node] : offs[node + 1]] for node in range(num_nodes)
            ]
        # Scratch arena: the generation stamps make clearing O(0) per search.
        self._dist: list[float] = [_INF] * num_nodes
        self._pred: list[int] = [-1] * num_nodes
        self._seen: list[int] = [0] * num_nodes
        self._done: list[int] = [0] * num_nodes
        self._generation = 0

    @classmethod
    def from_topology(cls, topology: "Topology") -> "CSRGraph":
        """Build a CSR snapshot of ``topology`` (adjacency order preserved).

        The flat slabs are assembled as Python lists first and converted to
        arrays in one C-level pass, instead of an ``array.append`` per edge.
        """
        num_nodes = topology.num_nodes
        offsets = [0] * (num_nodes + 1)
        neighbors: list[int] = []
        weights: list[float] = []
        unit = True
        position = 0
        for node, row in enumerate(topology.adjacency):
            for neighbor, weight in row:
                neighbors.append(neighbor)
                weights.append(weight)
                if weight != 1.0:
                    unit = False
            position += len(row)
            offsets[node + 1] = position
        return cls(
            num_nodes,
            array("q", offsets),
            array("q", neighbors),
            array("d", weights),
            unit,
        )

    @property
    def num_edges(self) -> int:
        """Number of undirected edges in the snapshot."""
        return len(self.neighbors) // 2

    # -- core search kernels ------------------------------------------------

    def _search(
        self,
        source: int,
        *,
        targets: Iterable[int] | None = None,
        k: int | None = None,
        radius: float | None = None,
        inclusive: bool = False,
        out: tuple[list[float], list[int]] | None = None,
    ) -> list[int]:
        """Run one search; return the settled nodes in settlement order.

        After the call, ``self._dist[v]`` / ``self._pred[v]`` hold the final
        distance / predecessor for every node in the returned list (and only
        until the next search reuses the arena).  ``out`` redirects those
        writes into caller-owned dense rows instead (full searches only --
        with truncation, discovered-but-unsettled nodes would leak partial
        values into the rows).  The ``_done`` stamps consumed by
        :meth:`batched_target_distances` are only maintained when ``targets``
        is given.
        """
        if not 0 <= source < self.num_nodes:
            raise ValueError(
                f"node {source} out of range for graph with "
                f"{self.num_nodes} nodes"
            )
        if self.unit_weights:
            return self._search_bfs(source, targets, k, radius, inclusive, out)
        return self._search_heap(source, targets, k, radius, inclusive, out)

    def _search_heap(
        self,
        source: int,
        targets: Iterable[int] | None,
        k: int | None,
        radius: float | None,
        inclusive: bool,
        out: tuple[list[float], list[int]] | None = None,
    ) -> list[int]:
        self._generation += 1
        generation = self._generation
        if out is None:
            dist = self._dist
            pred = self._pred
        else:
            dist, pred = out
        seen = self._seen
        done = self._done
        arcs = self._arc
        order: list[int] = []
        settle = order.append
        remaining = set(targets) if targets is not None else None
        seen[source] = generation
        dist[source] = 0.0
        pred[source] = -1
        heap: list[tuple[float, int]] = [(0.0, source)]
        push = heapq.heappush
        pop = heapq.heappop
        while heap:
            if k is not None and len(order) >= k:
                break
            d, node = pop(heap)
            if done[node] == generation:
                continue  # stale heap entry; the node settled at a smaller d
            if radius is not None:
                # The heap pops in nondecreasing distance, so the first
                # out-of-bounds settle ends the whole search.
                if inclusive:
                    if d > radius:
                        break
                elif d >= radius and node != source:
                    break
            done[node] = generation
            settle(node)
            if remaining is not None:
                remaining.discard(node)
                if not remaining:
                    break
            for neighbor, weight in arcs[node]:
                # No settled check is needed: weights are strictly positive
                # (Topology enforces it), so for a settled neighbor the
                # candidate always exceeds its final distance and both
                # branches below reject it.
                candidate = d + weight
                if seen[neighbor] != generation:
                    seen[neighbor] = generation
                    dist[neighbor] = candidate
                    pred[neighbor] = node
                    push(heap, (candidate, neighbor))
                else:
                    current = dist[neighbor]
                    if candidate < current:
                        dist[neighbor] = candidate
                        pred[neighbor] = node
                        push(heap, (candidate, neighbor))
                    elif candidate == current and node < pred[neighbor]:
                        pred[neighbor] = node
        return order

    def _search_bfs(
        self,
        source: int,
        targets: Iterable[int] | None,
        k: int | None,
        radius: float | None,
        inclusive: bool,
        out: tuple[list[float], list[int]] | None = None,
    ) -> list[int]:
        """Unit-weight fast path: level-ordered BFS, bit-identical results.

        Each frontier is sorted by node id before settling, which buys two
        invariants at once: the settlement order matches the heap kernel's
        ``(distance, id)`` order exactly (required at the *k*-nearest
        truncation boundary), and -- because a level-``d+1`` node's possible
        predecessors are exactly the level-``d`` nodes and discovery scans
        them in ascending id -- the *first* discoverer of a node is its
        min-id parent, reproducing the heap kernel's tie-break with no
        per-edge comparison.  Distances are written at settlement, not
        discovery: a truncated search discovers far more nodes than it
        settles, and nothing reads the distance of an unsettled node.
        """
        self._generation += 1
        generation = self._generation
        if out is None:
            dist = self._dist
            pred = self._pred
        else:
            dist, pred = out
        seen = self._seen
        done = self._done
        adj = self._adj
        order: list[int] = []
        remaining = set(targets) if targets is not None else None
        seen[source] = generation
        pred[source] = -1
        frontier = [source]
        level = 0.0
        while frontier:
            if radius is not None:
                if inclusive:
                    if level > radius:
                        break
                elif level >= radius and level > 0.0:
                    break
            if len(frontier) > 1:
                frontier.sort()
            if k is not None:
                room = k - len(order)
                if len(frontier) >= room:
                    # The truncated level is settled without scanning its
                    # edges: anything it would discover can never settle.
                    frontier = frontier[:room]
                    order.extend(frontier)
                    for node in frontier:
                        dist[node] = level
                    break
            next_level = level + 1.0
            next_frontier: list[int] = []
            discover = next_frontier.append
            if remaining is None:
                order.extend(frontier)
                for node in frontier:
                    dist[node] = level
                    for neighbor in adj[node]:
                        if seen[neighbor] != generation:
                            seen[neighbor] = generation
                            pred[neighbor] = node
                            discover(neighbor)
            else:
                stop = False
                for node in frontier:
                    done[node] = generation
                    dist[node] = level
                    order.append(node)
                    remaining.discard(node)
                    if not remaining:
                        stop = True
                        break
                    for neighbor in adj[node]:
                        if seen[neighbor] != generation:
                            seen[neighbor] = generation
                            pred[neighbor] = node
                            discover(neighbor)
                if stop:
                    break
            frontier = next_frontier
            level = next_level
        return order

    def _as_dicts(
        self, order: Sequence[int]
    ) -> tuple[dict[int, float], dict[int, int]]:
        """Materialize the arena into the public dict-shaped results.

        ``order[0]`` is always the source -- the only settled node without a
        predecessor -- so the predecessor map simply skips it.
        """
        dist = self._dist
        pred = self._pred
        distances = {node: dist[node] for node in order}
        iterator = iter(order)
        next(iterator, None)
        predecessors = {node: pred[node] for node in iterator}
        return distances, predecessors

    # -- public kernels (dict-shaped, mirroring shortest_paths) -------------

    def dijkstra(
        self, source: int, *, targets: Iterable[int] | None = None
    ) -> tuple[dict[int, float], dict[int, int]]:
        """Single-source shortest paths; see :func:`shortest_paths.dijkstra`."""
        return self._as_dicts(self._search(source, targets=targets))

    def dijkstra_k_nearest(
        self, source: int, k: int
    ) -> tuple[dict[int, float], dict[int, int]]:
        """Truncated search settling the ``k`` nodes nearest ``source``."""
        if k <= 0:
            raise ValueError(f"k must be > 0, got {k}")
        return self._as_dicts(self._search(source, k=k))

    def dijkstra_radius(
        self, source: int, radius: float, *, inclusive: bool = False
    ) -> tuple[dict[int, float], dict[int, int]]:
        """Radius-bounded search (strict boundary unless ``inclusive``)."""
        if radius < 0:
            raise ValueError(f"radius must be >= 0, got {radius}")
        return self._as_dicts(
            self._search(source, radius=radius, inclusive=inclusive)
        )

    def spt_rows(
        self, source: int, *, fill: float = 0.0
    ) -> tuple[list[float], list[int]]:
        """Full shortest-path tree as dense rows indexed by node id.

        Returns ``(dist_row, parent_row)``; unreachable nodes keep ``fill``
        and ``-1`` (the converged-state models assume connected topologies
        and historically used a 0.0 fill).
        """
        dist_row = [fill] * self.num_nodes
        parent_row = [-1] * self.num_nodes
        # The search writes distances/parents straight into the rows; only
        # settled nodes are touched, so unreachable ones keep the fill.
        self._search(source, out=(dist_row, parent_row))
        return dist_row, parent_row

    # -- batched drivers ----------------------------------------------------

    def batched_spt(
        self, sources: Iterable[int], *, fill: float = 0.0
    ) -> Iterator[tuple[int, list[float], list[int]]]:
        """Yield ``(source, dist_row, parent_row)`` for each source.

        All searches share one scratch arena; only the dense output rows are
        allocated per source.
        """
        for source in sources:
            dist_row, parent_row = self.spt_rows(source, fill=fill)
            yield source, dist_row, parent_row

    def batched_k_nearest(
        self, k: int, nodes: Iterable[int] | None = None
    ) -> list[tuple[dict[int, float], dict[int, int]]]:
        """Run :meth:`dijkstra_k_nearest` for every node (or ``nodes``)."""
        if k <= 0:
            raise ValueError(f"k must be > 0, got {k}")
        sources = range(self.num_nodes) if nodes is None else nodes
        return [self._as_dicts(self._search(v, k=k)) for v in sources]

    def batched_radius(
        self,
        radii: Sequence[float],
        nodes: Sequence[int] | None = None,
        *,
        inclusive: bool = False,
    ) -> list[tuple[dict[int, float], dict[int, int]]]:
        """Run :meth:`dijkstra_radius` per node with its own radius.

        ``radii`` aligns with ``nodes`` (default: all nodes in id order) and
        must cover every source -- a short list would otherwise silently
        truncate the batch.
        """
        sources = range(self.num_nodes) if nodes is None else nodes
        if len(radii) != len(sources):
            raise ValueError(
                f"radii must have exactly {len(sources)} entries, "
                f"got {len(radii)}"
            )
        results = []
        for node, radius in zip(sources, radii):
            if radius < 0:
                raise ValueError(f"radius must be >= 0, got {radius}")
            results.append(
                self._as_dicts(
                    self._search(node, radius=radius, inclusive=inclusive)
                )
            )
        return results

    def batched_target_distances(
        self, pairs: Iterable[tuple[int, int]]
    ) -> dict[tuple[int, int], float]:
        """Shortest distances for source-destination pairs.

        Pairs are grouped by source; each distinct source runs one
        early-stopping search over the shared arena.  Raises ``ValueError``
        if any target is unreachable from its source.
        """
        by_source: dict[int, set[int]] = {}
        for source, target in pairs:
            by_source.setdefault(source, set()).add(target)
        result: dict[tuple[int, int], float] = {}
        dist = self._dist
        done = self._done
        for source, targets in by_source.items():
            self._search(source, targets=targets)
            generation = self._generation
            for target in targets:
                if done[target] != generation:
                    raise ValueError(
                        f"node {target} unreachable from {source}; "
                        "topology must be connected"
                    )
                result[(source, target)] = dist[target]
        return result


# -- multiprocessing fan-out ------------------------------------------------
#
# The per-node vicinity and cluster builds are embarrassingly parallel: every
# search is independent and the graph is read-only.  Each worker process
# builds its own CSR snapshot once (searches are arena-stateful, so snapshots
# cannot be shared across processes) and then streams chunks of nodes.

_WORKER_CSR: CSRGraph | None = None


def _parallel_init(topology: "Topology") -> None:
    global _WORKER_CSR
    _WORKER_CSR = CSRGraph.from_topology(topology)


def _k_nearest_chunk(
    task: tuple[int, list[int]]
) -> list[tuple[dict[int, float], dict[int, int]]]:
    k, nodes = task
    assert _WORKER_CSR is not None
    return _WORKER_CSR.batched_k_nearest(k, nodes)


def _radius_chunk(
    task: tuple[list[int], list[float]]
) -> list[tuple[dict[int, float], dict[int, int]]]:
    nodes, radii = task
    assert _WORKER_CSR is not None
    return _WORKER_CSR.batched_radius(radii, nodes)


def _chunks(items: list, count: int) -> list[list]:
    size = max(1, -(-len(items) // count))
    return [items[i : i + size] for i in range(0, len(items), size)]


def parallel_k_nearest(
    topology: "Topology", k: int, *, workers: int = 1
) -> list[tuple[dict[int, float], dict[int, int]]]:
    """Per-node *k*-nearest searches, optionally fanned out over processes.

    With ``workers <= 1`` this is the serial batched driver.  Results are
    identical either way (each search is independent and deterministic);
    ordering is by node id.
    """
    nodes = list(topology.nodes())
    if workers <= 1 or len(nodes) < 4 * workers:
        return topology.csr().batched_k_nearest(k)
    from multiprocessing import Pool

    tasks = [(k, chunk) for chunk in _chunks(nodes, workers * 4)]
    with Pool(workers, initializer=_parallel_init, initargs=(topology,)) as pool:
        chunked = pool.map(_k_nearest_chunk, tasks)
    return [result for chunk in chunked for result in chunk]


def parallel_radius(
    topology: "Topology", radii: Sequence[float], *, workers: int = 1
) -> list[tuple[dict[int, float], dict[int, int]]]:
    """Per-node radius-bounded searches, optionally fanned out over processes.

    ``radii[v]`` bounds node ``v``'s search (strict boundary, matching the
    S4 cluster definition).  Results are ordered by node id.
    """
    nodes = list(topology.nodes())
    if len(radii) != len(nodes):
        raise ValueError(
            f"radii must have exactly {len(nodes)} entries, got {len(radii)}"
        )
    if workers <= 1 or len(nodes) < 4 * workers:
        return topology.csr().batched_radius(radii)
    from multiprocessing import Pool

    node_chunks = _chunks(nodes, workers * 4)
    tasks = []
    start = 0
    for chunk in node_chunks:
        tasks.append((chunk, list(radii[start : start + len(chunk)])))
        start += len(chunk)
    with Pool(workers, initializer=_parallel_init, initargs=(topology,)) as pool:
        chunked = pool.map(_radius_chunk, tasks)
    return [result for chunk in chunked for result in chunk]
