"""Flat-array CSR shortest-path kernels.

This module is the performance substrate under every shortest-path query in
the reproduction.  A :class:`CSRGraph` is a compressed-sparse-row snapshot of
a :class:`~repro.graphs.topology.Topology`:

* ``offsets`` -- ``array('q')`` of length ``n + 1``; node ``v``'s incident
  edges live at indices ``offsets[v] .. offsets[v + 1]``.
* ``neighbors`` -- ``array('q')`` of length ``2m`` with the edge endpoints.
* ``weights`` -- ``array('d')`` of length ``2m`` with the edge weights.

On top of that snapshot sit the Dijkstra variants the protocols need (full
single-source, *k*-nearest truncated, radius-bounded), running over a
preallocated scratch arena -- distance / predecessor / visited arrays that
are *generation-stamped* rather than reallocated or cleared per search, so a
batch of ``n`` searches touches no per-call O(n) setup.

Kernel selection
----------------

The snapshot carries a :class:`WeightProfile` (cached on the topology
alongside the CSR snapshot, invalidated on mutation) and picks one of three
kernels per graph, all bit-identical to each other and to the dict-based
reference engine:

=========  ==========================================  =====================
kernel     eligible when                               implementation
=========  ==========================================  =====================
``bucket`` every weight is an exact integer multiple   Dial-style bucket
           of one power-of-two quantum, with           queue (lazy deletion,
           ``max_weight / quantum <= 1024``            per-level id sort)
``bfs``    all weights are exactly 1.0 (both tiers;    level-ordered BFS
           preferred over ``bucket`` on unit
           graphs — no heap, no bucket pool)
``heap``   anything else (irregular float weights,     indexed 4-ary heap
           e.g. geometric latencies)                   with decrease-key (C)
                                                       / lazy ``heapq`` (py)
=========  ==========================================  =====================

When a C compiler is available, :mod:`repro.graphs._ckernels` compiles the
``heap``, ``bucket``, and ``bfs`` kernels to native code (``_kernels.c``) and
the searches run there; otherwise the pure-Python implementations in this module
run.  The tie-break contract is identical everywhere: nodes settle in
``(distance, node id)`` order and equal-distance predecessor ties resolve
toward the smaller predecessor id, so engines and tiers can be differential-
tested bit for bit.  (A pure-Python indexed 4-ary heap was measured slower
than C-implemented ``heapq`` under CPython, which is why the Python ``heap``
tier keeps the lazy ``heapq`` kernel; see ``docs/ARCHITECTURE.md``.)

Batched drivers (:meth:`CSRGraph.batched_spt`,
:meth:`CSRGraph.batched_k_nearest`, :meth:`CSRGraph.batched_radius`,
:meth:`CSRGraph.batched_target_distances`) run many searches over the shared
arena; :func:`parallel_k_nearest` / :func:`parallel_radius` add an opt-in
``multiprocessing`` fan-out for the embarrassingly parallel per-node
vicinity and cluster builds.

The stable public API remains :mod:`repro.graphs.shortest_paths`; callers
normally obtain a kernel via :meth:`Topology.csr`, which caches the snapshot
and invalidates it when the topology mutates.

Examples
--------
The snapshot exposes the same dict-shaped searches as the public API:

>>> from repro.graphs.topology import Topology
>>> topology = Topology.from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
>>> distances, predecessors = topology.csr().dijkstra(0)
>>> distances[3], predecessors[3]
(2.0, 1)

The weight profile drives kernel selection; quantized weights select the
bucket queue and irregular weights fall back to the heap:

>>> quantized = Topology.from_edges(3, [(0, 1, 0.5), (1, 2, 2.5)])
>>> quantized.csr().kernel
'bucket'
>>> irregular = Topology.from_edges(3, [(0, 1, 0.3), (1, 2, 2.5)])
>>> irregular.csr().kernel
'heap'
"""

from __future__ import annotations

import ctypes
import heapq
import math
import os
from array import array
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

from repro.graphs import _ckernels

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.graphs.topology import Topology

__all__ = [
    "CSRGraph",
    "SharedCSR",
    "SharedCSRHandle",
    "WeightProfile",
    "profile_weights",
    "DIAL_MAX_QUANTA",
    "KERNELS",
    "kernel_threads",
    "parallel_k_nearest",
    "parallel_radius",
    "parallel_k_nearest_flat",
    "parallel_radius_flat",
]

_INF = math.inf


def kernel_threads(threads: int | None = None) -> int:
    """Resolve the in-kernel batch fan-out width.

    Precedence: an explicit positive ``threads`` argument, then the
    ``REPRO_KERNEL_THREADS`` environment variable, then the machine's CPU
    count.  Batched results are byte-identical for every width, so the
    default only affects wall-clock time -- but bench reports record the
    active width (see the ``host`` block) so runs remain comparable.
    """
    if threads is not None and threads > 0:
        return threads
    env = os.environ.get("REPRO_KERNEL_THREADS", "")
    if env:
        try:
            value = int(env)
        except ValueError:
            value = 0
        if value > 0:
            return value
    return os.cpu_count() or 1

#: Kernel names accepted by ``kernel=`` overrides (``None`` means auto).
KERNELS = ("bfs", "bucket", "heap")

#: Bucket-queue eligibility bound: ``max_weight / quantum`` must not exceed
#: this, which caps both the circular bucket ring and the number of empty
#: levels a sweep can cross between settles.
DIAL_MAX_QUANTA = 1024

_RADIUS_NONE, _RADIUS_STRICT, _RADIUS_INCLUSIVE = 0, 1, 2


@dataclass(frozen=True)
class WeightProfile:
    """Summary of a graph's edge weights, used to pick the search kernel.

    Attributes
    ----------
    unit:
        True when every weight is exactly ``1.0`` (hop-count graphs: G(n,m),
        the synthetic AS-level / router-level Internet maps).
    min_weight / max_weight:
        Extremes over all edge weights (both ``1.0`` for an edgeless graph).
    quantum:
        The largest power of two ``q`` such that every weight is an *exact*
        integer multiple of ``q`` -- or ``None`` when no such quantum keeps
        ``max_weight / q`` within :data:`DIAL_MAX_QUANTA`.  Power-of-two
        quanta make every path distance an exact multiple of ``q`` in IEEE
        arithmetic, so Dial bucket indices are exact integers and the bucket
        queue is bit-identical to the heap kernel.
    max_quanta:
        ``int(max_weight / quantum)`` when a quantum exists, else ``None``.

    Examples
    --------
    >>> profile_weights([1.0, 1.0]).unit
    True
    >>> profile_weights([0.5, 2.5, 1.0]).quantum
    0.5
    >>> profile_weights([0.1, 0.2]).quantum is None  # 0.1 is not p/2**k
    True
    """

    unit: bool
    min_weight: float
    max_weight: float
    quantum: float | None
    max_quanta: int | None

    @property
    def bucket_ok(self) -> bool:
        """True when the Dial bucket queue is applicable to this graph."""
        return self.quantum is not None


def _pow2_divisor(weight: float) -> float:
    """Largest power of two that divides ``weight`` exactly."""
    mantissa, exponent = math.frexp(weight)
    bits = int(mantissa * 9007199254740992.0)  # 2**53; exact for a double
    trailing = (bits & -bits).bit_length() - 1
    return math.ldexp(1.0, exponent - 53 + trailing)


def profile_weights(weights: Iterable[float]) -> WeightProfile:
    """Profile an iterable of edge weights in one pass.

    See :class:`WeightProfile` for the meaning of the fields.  An empty
    iterable profiles as a unit-weight graph (the kernels never read weights
    of an edgeless graph).
    """
    min_weight = _INF
    max_weight = 0.0
    quantum = _INF
    unit = True
    eligible = True
    for weight in weights:
        if weight < min_weight:
            min_weight = weight
        if weight > max_weight:
            max_weight = weight
        if weight != 1.0:
            unit = False
        if eligible:
            if not math.isfinite(weight):
                # inf (and NaN) weights are accepted by Topology.add_edge;
                # they have no power-of-two quantum, so route to the heap
                # kernel rather than crash in _pow2_divisor.
                eligible = False
                continue
            divisor = _pow2_divisor(weight)
            if divisor < quantum:
                quantum = divisor
            if max_weight / quantum > DIAL_MAX_QUANTA:
                eligible = False
    if max_weight == 0.0:  # no edges
        return WeightProfile(True, 1.0, 1.0, 1.0, 1)
    if eligible and max_weight / quantum <= DIAL_MAX_QUANTA:
        return WeightProfile(
            unit, min_weight, max_weight, quantum, int(max_weight / quantum)
        )
    return WeightProfile(unit, min_weight, max_weight, None, None)


def profile_with_weight(
    profile: WeightProfile, weight: float
) -> WeightProfile:
    """Profile of the weight multiset ``old + [weight]``, without a rescan.

    Exact for additions: every field of :class:`WeightProfile` is an
    order-free reduction (``unit`` and the bounds are associative min/max
    folds, the quantum is a running minimum of per-weight power-of-two
    divisors, and Dial eligibility is monotone -- the ``max/quantum`` ratio
    only ever grows as weights are added, so an ineligible profile can
    never become eligible).  Used by the incremental CSR patches so a
    single-edge mutation does not pay an O(E) weight rescan.
    """
    unit = profile.unit and weight == 1.0
    min_weight = min(profile.min_weight, weight)
    max_weight = max(profile.max_weight, weight)
    if profile.quantum is None or not math.isfinite(weight):
        return WeightProfile(unit, min_weight, max_weight, None, None)
    quantum = min(profile.quantum, _pow2_divisor(weight))
    if max_weight / quantum <= DIAL_MAX_QUANTA:
        return WeightProfile(
            unit, min_weight, max_weight, quantum, int(max_weight / quantum)
        )
    return WeightProfile(unit, min_weight, max_weight, None, None)


class CSRGraph:
    """Compressed-sparse-row graph with a reusable search arena.

    Instances are immutable snapshots: mutate the owning
    :class:`~repro.graphs.topology.Topology` and a fresh snapshot is built on
    the next :meth:`Topology.csr` call.  The scratch arrays make a single
    instance non-reentrant -- one search at a time per ``CSRGraph`` (each
    process in a :func:`parallel_k_nearest` fan-out builds its own).

    Parameters
    ----------
    num_nodes, offsets, neighbors, weights:
        The CSR slabs (see the module docstring for the layout).
    unit_weights:
        Optional override of the profiled ``unit`` flag, kept for backward
        compatibility; pass ``None`` (default) to trust the profile.
    profile:
        Precomputed :class:`WeightProfile`; computed from ``weights`` when
        omitted.
    kernel:
        Force ``"bfs"`` / ``"bucket"`` / ``"heap"`` instead of the profiled
        choice (used by the ``repro bench --kernel`` A/B harness and the
        differential tests).  Raises ``ValueError`` when the forced kernel
        is not applicable to this graph's weights.
    use_c:
        Force the C tier on (``True``) or off (``False``); default ``None``
        autodetects via :func:`repro.graphs._ckernels.load_kernels`.
    """

    __slots__ = (
        "num_nodes",
        "offsets",
        "neighbors",
        "weights",
        "profile",
        "unit_weights",
        "kernel",
        "tier",
        "_clib",
        "_adj",
        "_arc",
        "_dist",
        "_pred",
        "_seen",
        "_done",
        "_generation",
        "_buckets",
        "_c",
    )

    def __init__(
        self,
        num_nodes: int,
        offsets: array,
        neighbors: array,
        weights: array,
        unit_weights: bool | None = None,
        *,
        profile: WeightProfile | None = None,
        kernel: str | None = None,
        use_c: bool | None = None,
    ) -> None:
        self.num_nodes = num_nodes
        self.offsets = offsets
        self.neighbors = neighbors
        self.weights = weights
        if profile is None:
            profile = profile_weights(weights)
        if unit_weights is not None and unit_weights != profile.unit:
            # Explicit override (tests force the weighted kernels onto
            # unit-weight graphs): disable the unit/bucket fast paths.
            profile = WeightProfile(
                unit_weights, profile.min_weight, profile.max_weight,
                None, None,
            )
        self.profile = profile
        self.unit_weights = profile.unit
        if use_c is None:
            self._clib = _ckernels.load_kernels()
        elif use_c:
            self._clib = _ckernels.load_kernels()
            if self._clib is None:
                raise RuntimeError(
                    f"C kernels unavailable: {_ckernels.build_error()}"
                )
        else:
            self._clib = None
        self.kernel = self._select_kernel(kernel)
        self.tier = "c" if self._clib is not None else "python"
        # Hot-loop slabs and scratch arenas are built lazily per tier (the C
        # tier never needs the Python tuple slabs, and vice versa).
        self._adj: list[list[int]] | None = None
        self._arc: list[list[tuple[int, float]]] | None = None
        self._dist: Sequence[float] | None = None
        self._pred: Sequence[int] | None = None
        self._seen = None
        self._done = None
        self._generation = 0
        self._buckets: list[list[int]] = []
        self._c: dict | None = None

    def _select_kernel(self, forced: str | None) -> str:
        profile = self.profile
        if forced is not None:
            if forced not in KERNELS:
                raise ValueError(
                    f"unknown kernel {forced!r}; expected one of {KERNELS}"
                )
            if forced == "bfs" and not profile.unit:
                raise ValueError("bfs kernel requires unit weights")
            if forced == "bucket" and not profile.bucket_ok:
                raise ValueError(
                    "bucket kernel requires power-of-two-quantized weights "
                    f"with max_weight/quantum <= {DIAL_MAX_QUANTA}"
                )
            return forced
        if self._clib is not None:
            if profile.unit:
                return "bfs"
            return "bucket" if profile.bucket_ok else "heap"
        if profile.unit:
            return "bfs"
        if profile.bucket_ok:
            return "bucket"
        return "heap"

    @classmethod
    def from_topology(
        cls,
        topology: "Topology",
        *,
        kernel: str | None = None,
        use_c: bool | None = None,
    ) -> "CSRGraph":
        """Build a CSR snapshot of ``topology`` (adjacency order preserved).

        The flat slabs are assembled as Python lists first and converted to
        arrays in one C-level pass, instead of an ``array.append`` per edge.
        The weight profile comes from :meth:`Topology.weight_profile`, which
        caches it alongside the snapshot.
        """
        num_nodes = topology.num_nodes
        offsets = [0] * (num_nodes + 1)
        neighbors: list[int] = []
        weights: list[float] = []
        position = 0
        for node, row in enumerate(topology.adjacency):
            for neighbor, weight in row:
                neighbors.append(neighbor)
                weights.append(weight)
            position += len(row)
            offsets[node + 1] = position
        return cls(
            num_nodes,
            array("q", offsets),
            array("q", neighbors),
            array("d", weights),
            profile=topology.weight_profile(),
            kernel=kernel,
            use_c=use_c,
        )

    @classmethod
    def from_shared(
        cls, handle: "SharedCSRHandle", *, use_c: bool | None = None
    ) -> "CSRGraph":
        """Attach to a published snapshot; zero-copy view, no rebuild.

        The returned snapshot's ``offsets`` / ``neighbors`` / ``weights``
        slabs are typed :class:`memoryview`\\ s over the shared-memory
        segment named by ``handle`` -- nothing is copied, and the C kernels
        pass the mapped pages straight to native code via ``from_buffer``.
        Only the per-search scratch arena is private to the attaching
        process, which is exactly what makes one immutable snapshot safely
        shareable across a fan-out: searches never write to the slabs.

        The mapping stays alive exactly as long as the slab views do: the
        attaching ``SharedMemory`` object is detached from its finalizer
        (views created from it keep the underlying ``mmap`` alive, and the
        last view to die unmaps it), so snapshots can be dropped in any
        order without ``BufferError`` noise.  The *publisher* controls the
        segment's name lifetime (see :class:`SharedCSR`); attachers never
        unlink.
        """
        shm = _attach_untracked(handle.shm_name)
        n = handle.num_nodes
        arcs = handle.num_arcs
        offsets_end = 8 * (n + 1)
        neighbors_end = offsets_end + 8 * arcs
        weights_end = neighbors_end + 8 * arcs
        buf = shm.buf
        graph = cls(
            n,
            buf[:offsets_end].cast("q"),
            buf[offsets_end:neighbors_end].cast("q"),
            buf[neighbors_end:weights_end].cast("d"),
            profile=handle.profile,
            kernel=handle.kernel,
            use_c=use_c,
        )
        # Hand lifetime management to the views: drop the SharedMemory
        # object's own references so its close() (now or at GC) only closes
        # the file descriptor, never tries to unmap pages the kernels are
        # still pointing into.
        shm._buf = None
        shm._mmap = None
        shm.close()
        return graph

    @property
    def num_edges(self) -> int:
        """Number of undirected edges in the snapshot."""
        return len(self.neighbors) // 2

    # -- incremental single-edge patches ------------------------------------
    #
    # Each patch assembles a NEW snapshot from this one's slabs with
    # C-level array slicing instead of the O(E) per-arc Python loop of
    # ``from_topology`` -- the discrete-event churn engine applies one
    # topology mutation per event, and rebuilding the snapshot from
    # scratch would dominate its per-event budget.  This snapshot is left
    # untouched (snapshots stay immutable; other holders keep their view),
    # and untouched slabs are shared between the two snapshots.  Patches
    # require array-backed slabs (``Topology.csr`` snapshots always are);
    # shared-memory views raise ``TypeError`` on the slice-assign below.

    def _arc_position(self, u: int, v: int) -> int:
        """Index of the arc ``u -> v`` in the neighbor/weight slabs."""
        neighbors = self.neighbors
        for position in range(self.offsets[u], self.offsets[u + 1]):
            if neighbors[position] == v:
                return position
        raise KeyError(f"no arc {u}->{v} in CSR snapshot")

    def _shifted_offsets(self, u: int, v: int, delta: int) -> array:
        """Offsets after adding ``delta`` arcs to each of rows u and v."""
        offsets = self.offsets[:]
        lo, hi = (u, v) if u < v else (v, u)
        for node in range(lo + 1, hi + 1):
            offsets[node] += delta
        twice = delta + delta
        for node in range(hi + 1, self.num_nodes + 1):
            offsets[node] += twice
        return offsets

    def with_weight(self, u: int, v: int, weight: float) -> "CSRGraph":
        """Snapshot with the existing edge ``{u, v}`` reweighted."""
        weight = float(weight)
        weights = self.weights[:]
        weights[self._arc_position(u, v)] = weight
        weights[self._arc_position(v, u)] = weight
        return CSRGraph(
            self.num_nodes,
            self.offsets,
            self.neighbors,
            weights,
            profile=profile_with_weight(self.profile, weight),
        )

    def without_edge(self, u: int, v: int) -> "CSRGraph":
        """Snapshot with the edge ``{u, v}`` removed (arc order preserved).

        The profile is inherited unchanged: removing a weight keeps every
        profile invariant valid (remaining weights stay within the bounds
        and divisible by the quantum, and a unit graph stays unit).  It may
        no longer be *minimal* -- e.g. removing the only non-unit weight
        will not rediscover the BFS fast path -- which affects kernel
        choice only, never results (the kernels are bit-identical).
        """
        first = self._arc_position(u, v)
        second = self._arc_position(v, u)
        if first > second:
            first, second = second, first
        neighbors = (
            self.neighbors[:first]
            + self.neighbors[first + 1 : second]
            + self.neighbors[second + 1 :]
        )
        weights = (
            self.weights[:first]
            + self.weights[first + 1 : second]
            + self.weights[second + 1 :]
        )
        return CSRGraph(
            self.num_nodes,
            self._shifted_offsets(u, v, -1),
            neighbors,
            weights,
            profile=self.profile,
        )

    def with_edge(self, u: int, v: int, weight: float) -> "CSRGraph":
        """Snapshot with the new edge ``{u, v}`` appended to both rows.

        Matches ``from_topology`` of a topology whose ``add_edge`` appended
        the arc at the end of each endpoint's adjacency row.
        """
        weight = float(weight)
        lo, hi = (u, v) if u < v else (v, u)
        plo = self.offsets[lo + 1]
        phi = self.offsets[hi + 1]
        neighbors = (
            self.neighbors[:plo]
            + array("q", (hi,))
            + self.neighbors[plo:phi]
            + array("q", (lo,))
            + self.neighbors[phi:]
        )
        weights = (
            self.weights[:plo]
            + array("d", (weight,))
            + self.weights[plo:phi]
            + array("d", (weight,))
            + self.weights[phi:]
        )
        profile = (
            profile_with_weight(self.profile, weight)
            if len(self.weights)
            else profile_weights((weight, weight))
        )
        return CSRGraph(
            self.num_nodes,
            self._shifted_offsets(u, v, 1),
            neighbors,
            weights,
            profile=profile,
        )

    # -- lazy slabs and arenas ----------------------------------------------

    def _adj_slab(self) -> list[list[int]]:
        """Per-node neighbor-id lists (Python BFS kernel)."""
        if self._adj is None:
            offs = self.offsets.tolist()
            nbrs = self.neighbors.tolist()
            self._adj = [
                nbrs[offs[node] : offs[node + 1]]
                for node in range(self.num_nodes)
            ]
        return self._adj

    def _arc_slab(self) -> list[list[tuple[int, float]]]:
        """Per-node (neighbor, weight) tuple lists (Python weighted kernels).

        CPython boxes a fresh object on every ``array`` index, which would
        dominate the kernel runtime, so the scan loops iterate ready-made
        tuples carved once from the CSR slab here.
        """
        if self._arc is None:
            offs = self.offsets.tolist()
            arcs = list(zip(self.neighbors.tolist(), self.weights.tolist()))
            self._arc = [
                arcs[offs[node] : offs[node + 1]]
                for node in range(self.num_nodes)
            ]
        return self._arc

    def _py_arena(self) -> None:
        """Scratch arena for the Python kernels (generation-stamped)."""
        if self._seen is None:
            n = self.num_nodes
            self._dist = [_INF] * n
            self._pred = [-1] * n
            self._seen = [0] * n
            self._done = [0] * n

    def _c_arena(self) -> dict:
        """Scratch arena + cached ctypes pointers for the active C kernel.

        Only the buffers the selected kernel reads are allocated: the heap
        kernel needs ``heap``/``pos`` (n slots each), the dial kernel needs
        the entry pool (2m + 1 slots), the bucket ring, and a sort batch,
        and the BFS kernel needs the two frontier arrays (n slots each).
        """
        if self._c is None:
            n = self.num_nodes
            dist = array("d", bytes(8 * n))
            pred = array("q", bytes(8 * n))
            seen = array("q", bytes(8 * n))
            order = array("q", bytes(8 * n))
            tflag = bytearray(max(n, 1))

            def ptr_d(a: array):
                return (ctypes.c_double * len(a)).from_buffer(a) if a else None

            def ptr_q(a: array):
                return (ctypes.c_int64 * len(a)).from_buffer(a) if a else None

            self._c = {
                "dist": dist,
                "pred": pred,
                "seen": seen,
                "order": order,
                "p_offsets": ptr_q(self.offsets),
                "p_neighbors": ptr_q(self.neighbors),
                "p_weights": ptr_d(self.weights),
                "p_dist": ptr_d(dist),
                "p_pred": ptr_q(pred),
                "p_seen": ptr_q(seen),
                "p_order": ptr_q(order),
                "p_tflag": (ctypes.c_ubyte * len(tflag)).from_buffer(tflag),
            }
            buffers = [tflag]
            if self.kernel == "bucket":
                num_arcs = len(self.neighbors)
                batch = array("q", bytes(8 * n))
                pool_node = array("q", bytes(8 * (num_arcs + 1)))
                pool_next = array("q", bytes(8 * (num_arcs + 1)))
                slots = (self.profile.max_quanta or 0) + 1
                head = array("q", bytes(8 * slots))
                self._c.update(
                    {
                        "p_batch": ptr_q(batch),
                        "p_pool_node": ptr_q(pool_node),
                        "p_pool_next": ptr_q(pool_next),
                        "p_head": ptr_q(head),
                        "slots": slots,
                    }
                )
                buffers += [batch, pool_node, pool_next, head]
            elif self.kernel == "bfs":
                frontier = array("q", bytes(8 * n))
                next_frontier = array("q", bytes(8 * n))
                self._c.update(
                    {
                        "p_frontier": ptr_q(frontier),
                        "p_next_frontier": ptr_q(next_frontier),
                    }
                )
                buffers += [frontier, next_frontier]
            else:
                heap_arr = array("q", bytes(8 * n))
                pos = array("q", bytes(8 * n))
                self._c.update({"p_heap": ptr_q(heap_arr), "p_pos": ptr_q(pos)})
                buffers += [heap_arr, pos]
            # Keep the buffers alive for the lifetime of the pointers.
            self._c["_buffers"] = buffers
            self._dist = dist
            self._pred = pred
        return self._c

    # -- core search dispatch ----------------------------------------------

    def _search(
        self,
        source: int,
        *,
        targets: Iterable[int] | None = None,
        k: int | None = None,
        radius: float | None = None,
        inclusive: bool = False,
        out: tuple[list[float], list[int]] | None = None,
    ) -> list[int]:
        """Run one search; return the settled nodes in settlement order.

        After the call, ``self._dist[v]`` / ``self._pred[v]`` hold the final
        distance / predecessor for every node in the returned list (and only
        until the next search reuses the arena).  ``out`` redirects those
        writes into caller-owned dense rows instead (full searches only --
        with truncation, discovered-but-unsettled nodes would leak partial
        values into the rows; the C tier copies settled rows after the
        search instead, see :meth:`spt_rows`).  The settled stamps consumed
        by :meth:`batched_target_distances` are only maintained when
        ``targets`` is given.
        """
        if not 0 <= source < self.num_nodes:
            raise ValueError(
                f"node {source} out of range for graph with "
                f"{self.num_nodes} nodes"
            )
        if targets is not None:
            targets = set(targets)
            for target in targets:
                if not 0 <= target < self.num_nodes:
                    raise ValueError(
                        f"target {target} out of range for graph with "
                        f"{self.num_nodes} nodes"
                    )
        if self.tier == "c":
            assert out is None, "C tier writes rows post-search"
            return self._search_c(source, targets, k, radius, inclusive)
        if self.kernel == "bfs":
            return self._search_bfs(source, targets, k, radius, inclusive, out)
        if self.kernel == "bucket":
            return self._search_dial(
                source, targets, k, radius, inclusive, out
            )
        return self._search_heap(source, targets, k, radius, inclusive, out)

    # -- C tier -------------------------------------------------------------

    def _search_c(
        self,
        source: int,
        targets: set[int] | None,
        k: int | None,
        radius: float | None,
        inclusive: bool,
    ) -> list[int]:
        arena = self._c_arena()
        self._generation += 1
        if targets is not None:
            target_arr = array("q", targets)
            p_targets = (
                (ctypes.c_int64 * len(target_arr)).from_buffer(target_arr)
                if target_arr
                else None
            )
            num_targets = len(target_arr)
            if num_targets == 0:
                # In C, num_targets == 0 means "no target bound"; the Python
                # kernels stop after settling the source when the target set
                # is empty, so mirror that with a k = 1 truncation.
                k = 1
        else:
            p_targets = None
            num_targets = 0
        if radius is None:
            radius_val, radius_mode = -1.0, _RADIUS_NONE
        else:
            radius_val = radius
            radius_mode = _RADIUS_INCLUSIVE if inclusive else _RADIUS_STRICT
        common = (
            self.num_nodes,
            arena["p_offsets"],
            arena["p_neighbors"],
            arena["p_weights"],
            source,
            arena["p_dist"],
            arena["p_pred"],
            arena["p_seen"],
            self._generation,
            arena["p_order"],
        )
        tail = (
            k or 0,
            radius_val,
            radius_mode,
            p_targets,
            num_targets,
            arena["p_tflag"],
        )
        if self.kernel == "bfs":
            # Unit-weight level BFS never reads the weights slab.
            count = self._clib.spt_bfs(
                common[0], common[1], common[2], *common[4:],
                arena["p_frontier"], arena["p_next_frontier"],
                *tail,
            )
        elif self.kernel == "bucket":
            count = self._clib.spt_dial(
                *common,
                self.profile.quantum,
                arena["slots"],
                arena["p_head"],
                arena["p_pool_node"],
                arena["p_pool_next"],
                arena["p_batch"],
                *tail,
            )
        else:
            count = self._clib.spt_heap4(
                *common, arena["p_heap"], arena["p_pos"], *tail
            )
        return arena["order"][:count].tolist()

    def _search_c_count(
        self,
        source: int,
        k: int | None,
        radius: float | None,
        inclusive: bool,
    ) -> int:
        """Run one C-tier search and return only the settled count.

        The settle order stays in ``self._c["order"]`` as a typed array --
        the flat batched drivers gather rows straight out of the arena
        without materializing a Python list per search (the per-element
        boxing of ``order.tolist()`` dominates small truncated searches).
        """
        if not 0 <= source < self.num_nodes:
            raise ValueError(
                f"node {source} out of range for graph with "
                f"{self.num_nodes} nodes"
            )
        arena = self._c_arena()
        self._generation += 1
        if radius is None:
            radius_val, radius_mode = -1.0, _RADIUS_NONE
        else:
            radius_val = radius
            radius_mode = _RADIUS_INCLUSIVE if inclusive else _RADIUS_STRICT
        common = (
            self.num_nodes,
            arena["p_offsets"],
            arena["p_neighbors"],
            arena["p_weights"],
            source,
            arena["p_dist"],
            arena["p_pred"],
            arena["p_seen"],
            self._generation,
            arena["p_order"],
        )
        tail = (k or 0, radius_val, radius_mode, None, 0, arena["p_tflag"])
        if self.kernel == "bfs":
            return self._clib.spt_bfs(
                common[0], common[1], common[2], *common[4:],
                arena["p_frontier"], arena["p_next_frontier"],
                *tail,
            )
        if self.kernel == "bucket":
            return self._clib.spt_dial(
                *common,
                self.profile.quantum,
                arena["slots"],
                arena["p_head"],
                arena["p_pool_node"],
                arena["p_pool_next"],
                arena["p_batch"],
                *tail,
            )
        return self._clib.spt_heap4(
            *common, arena["p_heap"], arena["p_pos"], *tail
        )

    # -- Python heap kernel (lazy heapq; the no-compiler fallback) ----------

    def _search_heap(
        self,
        source: int,
        targets: Iterable[int] | None,
        k: int | None,
        radius: float | None,
        inclusive: bool,
        out: tuple[list[float], list[int]] | None = None,
    ) -> list[int]:
        self._py_arena()
        self._generation += 1
        generation = self._generation
        if out is None:
            dist = self._dist
            pred = self._pred
        else:
            dist, pred = out
        seen = self._seen
        done = self._done
        arcs = self._arc_slab()
        order: list[int] = []
        settle = order.append
        remaining = set(targets) if targets is not None else None
        seen[source] = generation
        dist[source] = 0.0
        pred[source] = -1
        heap: list[tuple[float, int]] = [(0.0, source)]
        push = heapq.heappush
        pop = heapq.heappop
        while heap:
            if k is not None and len(order) >= k:
                break
            d, node = pop(heap)
            if done[node] == generation:
                continue  # stale heap entry; the node settled at a smaller d
            if radius is not None:
                # The heap pops in nondecreasing distance, so the first
                # out-of-bounds settle ends the whole search.
                if inclusive:
                    if d > radius:
                        break
                elif d >= radius and node != source:
                    break
            done[node] = generation
            settle(node)
            if remaining is not None:
                remaining.discard(node)
                if not remaining:
                    break
            for neighbor, weight in arcs[node]:
                # No settled check is needed: weights are strictly positive
                # (Topology enforces it), so for a settled neighbor the
                # candidate always exceeds its final distance and both
                # branches below reject it.
                candidate = d + weight
                if seen[neighbor] != generation:
                    seen[neighbor] = generation
                    dist[neighbor] = candidate
                    pred[neighbor] = node
                    push(heap, (candidate, neighbor))
                else:
                    current = dist[neighbor]
                    if candidate < current:
                        dist[neighbor] = candidate
                        pred[neighbor] = node
                        push(heap, (candidate, neighbor))
                    elif candidate == current and node < pred[neighbor]:
                        pred[neighbor] = node
        return order

    # -- Python Dial bucket kernel ------------------------------------------

    def _search_dial(
        self,
        source: int,
        targets: Iterable[int] | None,
        k: int | None,
        radius: float | None,
        inclusive: bool,
        out: tuple[list[float], list[int]] | None = None,
    ) -> list[int]:
        """Dial bucket queue for power-of-two-quantized weights.

        Distances are exact multiples of ``profile.quantum``, so bucket
        indices are exact integers and every bucket holds equal-distance
        nodes: sorting a bucket by id reproduces the global
        ``(distance, id)`` settle order.  Decreases append a fresh entry and
        leave the stale one behind; a sweep drops entries whose recorded
        distance no longer matches the bucket level.  Buckets live in a
        persistent arena list, cleared as they are swept (plus a tail
        cleanup on truncated searches).
        """
        self._py_arena()
        self._generation += 1
        generation = self._generation
        if out is None:
            dist = self._dist
            pred = self._pred
        else:
            dist, pred = out
        seen = self._seen
        done = self._done
        arcs = self._arc_slab()
        quantum = self.profile.quantum
        inv_quantum = 1.0 / quantum
        order: list[int] = []
        settle = order.append
        remaining = set(targets) if targets is not None else None
        seen[source] = generation
        dist[source] = 0.0
        pred[source] = -1
        buckets = self._buckets
        if not buckets:
            buckets.append([])
        num_buckets = len(buckets)
        buckets[0].append(source)
        pending = 1
        index = 0
        stop = False
        while pending and not stop:
            bucket = buckets[index]
            if not bucket:
                index += 1
                continue
            level = index * quantum
            if radius is not None:
                if inclusive:
                    if level > radius:
                        break
                elif level >= radius and index > 0:
                    break
            if len(bucket) > 1:
                bucket.sort()
            for node in bucket:
                pending -= 1
                if dist[node] != level:
                    continue  # stale entry; settled at a smaller distance
                if k is not None and len(order) >= k:
                    stop = True
                    break
                done[node] = generation
                settle(node)
                if remaining is not None:
                    remaining.discard(node)
                    if not remaining:
                        stop = True
                        break
                for neighbor, weight in arcs[node]:
                    candidate = level + weight
                    if seen[neighbor] != generation:
                        seen[neighbor] = generation
                    else:
                        current = dist[neighbor]
                        if candidate < current:
                            pass  # fall through to the append below
                        else:
                            if (
                                candidate == current
                                and node < pred[neighbor]
                            ):
                                pred[neighbor] = node
                            continue
                    dist[neighbor] = candidate
                    pred[neighbor] = node
                    slot = int(candidate * inv_quantum)
                    if slot >= num_buckets:
                        buckets.extend(
                            [] for _ in range(slot + 1 - num_buckets)
                        )
                        num_buckets = slot + 1
                    buckets[slot].append(neighbor)
                    pending += 1
            bucket.clear()
            index += 1
        if pending:
            # Truncated search: drop the entries the sweep never reached so
            # the arena is clean for the next search.
            for bucket in buckets[index:]:
                if bucket:
                    bucket.clear()
        return order

    # -- Python BFS kernel ---------------------------------------------------

    def _search_bfs(
        self,
        source: int,
        targets: Iterable[int] | None,
        k: int | None,
        radius: float | None,
        inclusive: bool,
        out: tuple[list[float], list[int]] | None = None,
    ) -> list[int]:
        """Unit-weight fast path: level-ordered BFS, bit-identical results.

        Each frontier is sorted by node id before settling, which buys two
        invariants at once: the settlement order matches the heap kernel's
        ``(distance, id)`` order exactly (required at the *k*-nearest
        truncation boundary), and -- because a level-``d+1`` node's possible
        predecessors are exactly the level-``d`` nodes and discovery scans
        them in ascending id -- the *first* discoverer of a node is its
        min-id parent, reproducing the heap kernel's tie-break with no
        per-edge comparison.  Distances are written at settlement, not
        discovery: a truncated search discovers far more nodes than it
        settles, and nothing reads the distance of an unsettled node.
        """
        self._py_arena()
        self._generation += 1
        generation = self._generation
        if out is None:
            dist = self._dist
            pred = self._pred
        else:
            dist, pred = out
        seen = self._seen
        done = self._done
        adj = self._adj_slab()
        order: list[int] = []
        remaining = set(targets) if targets is not None else None
        seen[source] = generation
        pred[source] = -1
        frontier = [source]
        level = 0.0
        while frontier:
            if radius is not None:
                if inclusive:
                    if level > radius:
                        break
                elif level >= radius and level > 0.0:
                    break
            if len(frontier) > 1:
                frontier.sort()
            if k is not None:
                room = k - len(order)
                if len(frontier) >= room:
                    # The truncated level is settled without scanning its
                    # edges: anything it would discover can never settle.
                    frontier = frontier[:room]
                    order.extend(frontier)
                    for node in frontier:
                        dist[node] = level
                    break
            next_level = level + 1.0
            next_frontier: list[int] = []
            discover = next_frontier.append
            if remaining is None:
                order.extend(frontier)
                for node in frontier:
                    dist[node] = level
                    for neighbor in adj[node]:
                        if seen[neighbor] != generation:
                            seen[neighbor] = generation
                            pred[neighbor] = node
                            discover(neighbor)
            else:
                stop = False
                for node in frontier:
                    done[node] = generation
                    dist[node] = level
                    order.append(node)
                    remaining.discard(node)
                    if not remaining:
                        stop = True
                        break
                    for neighbor in adj[node]:
                        if seen[neighbor] != generation:
                            seen[neighbor] = generation
                            pred[neighbor] = node
                            discover(neighbor)
                if stop:
                    break
            frontier = next_frontier
            level = next_level
        return order

    def _as_dicts(
        self, order: Sequence[int]
    ) -> tuple[dict[int, float], dict[int, int]]:
        """Materialize the arena into the public dict-shaped results.

        ``order[0]`` is always the source -- the only settled node without a
        predecessor -- so the predecessor map simply skips it.
        """
        dist = self._dist
        pred = self._pred
        distances = {node: dist[node] for node in order}
        iterator = iter(order)
        next(iterator, None)
        predecessors = {node: pred[node] for node in iterator}
        return distances, predecessors

    # -- public kernels (dict-shaped, mirroring shortest_paths) -------------

    def dijkstra(
        self, source: int, *, targets: Iterable[int] | None = None
    ) -> tuple[dict[int, float], dict[int, int]]:
        """Single-source shortest paths; see :func:`shortest_paths.dijkstra`.

        >>> from repro.graphs.topology import Topology
        >>> csr = Topology.from_edges(3, [(0, 1, 2.0), (1, 2, 0.5)]).csr()
        >>> csr.dijkstra(0)
        ({0: 0.0, 1: 2.0, 2: 2.5}, {1: 0, 2: 1})
        """
        return self._as_dicts(self._search(source, targets=targets))

    def dijkstra_k_nearest(
        self, source: int, k: int
    ) -> tuple[dict[int, float], dict[int, int]]:
        """Truncated search settling the ``k`` nodes nearest ``source``."""
        if k <= 0:
            raise ValueError(f"k must be > 0, got {k}")
        return self._as_dicts(self._search(source, k=k))

    def dijkstra_radius(
        self, source: int, radius: float, *, inclusive: bool = False
    ) -> tuple[dict[int, float], dict[int, int]]:
        """Radius-bounded search.

        The boundary is *strict* by default -- a node at exactly ``radius``
        is excluded, matching the S4 cluster definition
        ``d(v, w) < d(w, l_w)`` -- and ``inclusive=True`` makes the
        comparison ``<=``.  The source always settles, even with
        ``radius=0.0``.

        >>> from repro.graphs.topology import Topology
        >>> csr = Topology.from_edges(3, [(0, 1, 1.5), (1, 2, 1.5)]).csr()
        >>> sorted(csr.dijkstra_radius(0, 3.0)[0])
        [0, 1]
        >>> sorted(csr.dijkstra_radius(0, 3.0, inclusive=True)[0])
        [0, 1, 2]
        """
        if radius < 0:
            raise ValueError(f"radius must be >= 0, got {radius}")
        return self._as_dicts(
            self._search(source, radius=radius, inclusive=inclusive)
        )

    def spt_rows(
        self, source: int, *, fill: float = 0.0
    ) -> tuple[list[float], list[int]]:
        """Full shortest-path tree as dense rows indexed by node id.

        Returns ``(dist_row, parent_row)``; unreachable nodes keep ``fill``
        and ``-1`` (the converged-state models assume connected topologies
        and historically used a 0.0 fill).
        """
        if self.tier == "c":
            order = self._search(source)
            dist_row = self._c["dist"].tolist()
            parent_row = self._c["pred"].tolist()
            if len(order) < self.num_nodes:
                # Disconnected graph: unreached slots hold stale values from
                # earlier searches; restore the fill contract.
                generation = self._generation
                seen = self._c["seen"]
                for node in range(self.num_nodes):
                    if seen[node] != generation:
                        dist_row[node] = fill
                        parent_row[node] = -1
            return dist_row, parent_row
        dist_row = [fill] * self.num_nodes
        parent_row = [-1] * self.num_nodes
        # The search writes distances/parents straight into the rows; only
        # settled nodes are touched, so unreachable ones keep the fill.
        self._search(source, out=(dist_row, parent_row))
        return dist_row, parent_row

    # -- slab-direct drivers ------------------------------------------------
    #
    # The substrate build writes kernel output straight into preallocated
    # SubstrateTables slabs (possibly mmap-backed and larger than RAM), so
    # these drivers take writable buffers instead of returning per-node
    # dicts: no per-element boxing, no intermediate dict materialization.

    def _flat_scratch(self) -> dict:
        """Arena extension for the flat drivers: settle-order row gathers."""
        arena = self._c_arena()
        if "row_d" not in arena:
            n = max(self.num_nodes, 1)
            row_d = array("d", bytes(8 * n))
            row_q = array("q", bytes(8 * n))
            arena["row_d"] = row_d
            arena["row_q"] = row_q
            arena["p_row_d"] = (ctypes.c_double * n).from_buffer(row_d)
            arena["p_row_q"] = (ctypes.c_int64 * n).from_buffer(row_q)
        return arena

    def spt_rows_into(
        self, source: int, dist_out, parent_out, *, fill: float = 0.0
    ) -> None:
        """Like :meth:`spt_rows`, writing into caller-owned dense buffers.

        ``dist_out`` / ``parent_out`` are writable length-``n`` buffers
        (``array`` or ``memoryview`` of format ``'d'`` / ``'q'``, e.g. one
        row of a ``SubstrateTables`` slab).  The C tier copies the scratch
        arena with two C-level slice assignments instead of boxing ``2n``
        Python objects through :meth:`spt_rows`'s lists; contents are
        bit-identical to :meth:`spt_rows`.
        """
        n = self.num_nodes
        dist_out = memoryview(dist_out)
        parent_out = memoryview(parent_out)
        if self.tier == "c":
            count = self._search_c_count(source, None, None, False)
            dist_out[:] = memoryview(self._c["dist"])
            parent_out[:] = memoryview(self._c["pred"])
            if count < n:
                # Disconnected graph: unreached slots hold stale values from
                # earlier searches; restore the fill contract.
                generation = self._generation
                seen = self._c["seen"]
                for node in range(n):
                    if seen[node] != generation:
                        dist_out[node] = fill
                        parent_out[node] = -1
            return
        # Python tiers write settled nodes straight into the output rows;
        # prefill so unreachable nodes keep the fill contract.
        dist_out[:] = memoryview(array("d", [fill]) * n)
        parent_out[:] = memoryview(array("q", [-1]) * n)
        self._search(source, out=(dist_out, parent_out))

    def k_nearest_into(
        self,
        k: int,
        sources: Iterable[int],
        members,
        dists,
        parents,
        offsets: array,
        *,
        base: int = 0,
    ) -> int:
        """Truncated searches written straight into preallocated slabs.

        For each source (in the given order) the settled row -- members in
        settle order, their distances, and their predecessors (``-1`` for
        the source itself) -- is appended to the writable buffers starting
        at position ``base``; one offset per source is appended to
        ``offsets``.  Returns the position after the last row.  The caller
        guarantees capacity (``k`` settles per source on a connected graph
        with ``k <= n``).  Contents are bit-identical to
        :meth:`dijkstra_k_nearest` run per source.
        """
        if k <= 0:
            raise ValueError(f"k must be > 0, got {k}")
        members = memoryview(members)
        dists = memoryview(dists)
        parents = memoryview(parents)
        position = base
        if self.tier == "c":
            arena = self._flat_scratch()
            lib = self._clib
            order_mv = memoryview(arena["order"])
            row_d = memoryview(arena["row_d"])
            row_q = memoryview(arena["row_q"])
            for source in sources:
                count = self._search_c_count(source, k, None, False)
                lib.gather_f64(
                    arena["p_order"], arena["p_dist"], arena["p_row_d"], count
                )
                lib.gather_i64(
                    arena["p_order"], arena["p_pred"], arena["p_row_q"], count
                )
                end = position + count
                members[position:end] = order_mv[:count]
                dists[position:end] = row_d[:count]
                parents[position:end] = row_q[:count]
                position = end
                offsets.append(end)
            return position
        for source in sources:
            order = self._search(source, k=k)
            dist = self._dist
            pred = self._pred
            for node in order:
                members[position] = node
                dists[position] = dist[node]
                parents[position] = pred[node]
                position += 1
            offsets.append(position)
        return position

    def batched_k_nearest_flat(
        self, k: int, nodes: Iterable[int] | None = None
    ) -> tuple[array, array, array, array]:
        """Per-source *k*-nearest rows as one flat CSR-shaped result.

        Returns ``(offsets, members, dists, parents)``: row ``i`` of the
        batch (source ``i`` of ``nodes``, default all nodes in id order)
        lives at ``offsets[i] .. offsets[i + 1]`` of the three data arrays,
        members in settle order with the source first (its parent entry is
        ``-1``).  This is the flat-transport equivalent of
        :meth:`batched_k_nearest` -- same searches, no per-node dicts.
        """
        if k <= 0:
            raise ValueError(f"k must be > 0, got {k}")
        sources = range(self.num_nodes) if nodes is None else nodes
        offsets = array("q", [0])
        members = array("q")
        dists = array("d")
        parents = array("q")
        if self.tier == "c":
            arena = self._flat_scratch()
            lib = self._clib
            order_arr = arena["order"]
            row_d = arena["row_d"]
            row_q = arena["row_q"]
            for source in sources:
                count = self._search_c_count(source, k, None, False)
                lib.gather_f64(
                    arena["p_order"], arena["p_dist"], arena["p_row_d"], count
                )
                lib.gather_i64(
                    arena["p_order"], arena["p_pred"], arena["p_row_q"], count
                )
                members += order_arr[:count]
                dists += row_d[:count]
                parents += row_q[:count]
                offsets.append(len(members))
            return offsets, members, dists, parents
        for source in sources:
            order = self._search(source, k=k)
            dist = self._dist
            pred = self._pred
            members.extend(order)
            dists.extend([dist[node] for node in order])
            parents.extend([pred[node] for node in order])
            offsets.append(len(members))
        return offsets, members, dists, parents

    def batched_radius_flat(
        self,
        radii: Sequence[float],
        nodes: Sequence[int] | None = None,
        *,
        inclusive: bool = False,
    ) -> tuple[array, array, array, array]:
        """Per-source radius-bounded rows as one flat CSR-shaped result.

        The flat-transport equivalent of :meth:`batched_radius` (same
        layout as :meth:`batched_k_nearest_flat`); ``radii`` aligns with
        ``nodes`` and the boundary is strict unless ``inclusive``.
        """
        sources = range(self.num_nodes) if nodes is None else nodes
        if len(radii) != len(sources):
            raise ValueError(
                f"radii must have exactly {len(sources)} entries, "
                f"got {len(radii)}"
            )
        offsets = array("q", [0])
        members = array("q")
        dists = array("d")
        parents = array("q")
        c_tier = self.tier == "c"
        if c_tier:
            arena = self._flat_scratch()
            lib = self._clib
            order_arr = arena["order"]
            row_d = arena["row_d"]
            row_q = arena["row_q"]
        for source, radius in zip(sources, radii):
            if radius < 0:
                raise ValueError(f"radius must be >= 0, got {radius}")
            if c_tier:
                count = self._search_c_count(source, None, radius, inclusive)
                lib.gather_f64(
                    arena["p_order"], arena["p_dist"], arena["p_row_d"], count
                )
                lib.gather_i64(
                    arena["p_order"], arena["p_pred"], arena["p_row_q"], count
                )
                members += order_arr[:count]
                dists += row_d[:count]
                parents += row_q[:count]
            else:
                order = self._search(source, radius=radius, inclusive=inclusive)
                dist = self._dist
                pred = self._pred
                members.extend(order)
                dists.extend([dist[node] for node in order])
                parents.extend([pred[node] for node in order])
            offsets.append(len(members))
        return offsets, members, dists, parents

    # -- in-kernel batched drivers ------------------------------------------
    #
    # One FFI call per build phase: the source loop and (optionally) a
    # pthread fan-out run inside _kernels.c, with one scratch arena per
    # thread and structurally disjoint output -- byte-identical to the
    # serial drivers for any thread count.  ``threads=None`` resolves via
    # :func:`kernel_threads` (explicit > REPRO_KERNEL_THREADS > CPU count);
    # ``threads=0`` forces the per-source serial loop, which is also the
    # fallback on the Python tier or when the C side cannot allocate.

    def _batch_prefix(self, p_sources, num_sources: int) -> tuple:
        """Common leading arguments of the batched C entry points."""
        arena = self._c_arena()
        kernel_id = {"heap": 0, "bucket": 1, "bfs": 2}[self.kernel]
        if self.kernel == "bucket":
            quantum = self.profile.quantum
            slots = (self.profile.max_quanta or 0) + 1
        else:
            quantum, slots = 0.0, 0
        return (
            self.num_nodes,
            arena["p_offsets"],
            arena["p_neighbors"],
            arena["p_weights"],
            kernel_id,
            quantum,
            slots,
            p_sources,
            num_sources,
        )

    def _check_sources(self, sources: array) -> None:
        if sources and not 0 <= min(sources) <= max(sources) < self.num_nodes:
            bad = min(sources) if min(sources) < 0 else max(sources)
            raise ValueError(
                f"node {bad} out of range for graph with "
                f"{self.num_nodes} nodes"
            )

    def spt_rows_batch_into(
        self,
        sources: Sequence[int],
        dist_out,
        parent_out,
        *,
        fill: float = 0.0,
        closest_dist=None,
        closest_landmark=None,
        threads: int | None = None,
    ) -> None:
        """Dense SPT rows for every source, one kernel call for the batch.

        ``dist_out`` / ``parent_out`` are writable buffers of
        ``len(sources) * n`` entries (row ``i`` belongs to ``sources[i]``);
        contents are bit-identical to :meth:`spt_rows_into` per source.
        When ``closest_dist`` / ``closest_landmark`` are given (length-``n``
        writable buffers seeded ``+inf`` / ``-1``), the closest-landmark
        fold of ascending-id sources runs in the same pass -- sources must
        then be in ascending order, as the substrate build's are.
        """
        src = sources if isinstance(sources, array) else array("q", sources)
        self._check_sources(src)
        n = self.num_nodes
        if not src:
            return
        if self.tier == "c" and threads != 0:
            total = len(src) * n
            p_sources = (ctypes.c_int64 * len(src)).from_buffer(src)
            p_dist = (ctypes.c_double * total).from_buffer(dist_out)
            p_parent = (ctypes.c_int64 * total).from_buffer(parent_out)
            if closest_dist is not None and closest_landmark is not None:
                p_best_d = (ctypes.c_double * n).from_buffer(closest_dist)
                p_best_l = (ctypes.c_int64 * n).from_buffer(closest_landmark)
            else:
                p_best_d = p_best_l = None
            status = self._clib.spt_rows_batch(
                *self._batch_prefix(p_sources, len(src)),
                p_dist,
                p_parent,
                fill,
                p_best_d,
                p_best_l,
                kernel_threads(threads),
            )
            if status == 0:
                return
        # Serial fallback: per-source rows plus a Python ascending fold.
        dist_mv = memoryview(dist_out)
        parent_mv = memoryview(parent_out)
        for index, source in enumerate(src):
            row = dist_mv[index * n : (index + 1) * n]
            self.spt_rows_into(
                source, row, parent_mv[index * n : (index + 1) * n], fill=fill
            )
            if closest_dist is not None and closest_landmark is not None:
                for node in range(n):
                    d = row[node]
                    if d < closest_dist[node]:
                        closest_dist[node] = d
                        closest_landmark[node] = source

    def k_nearest_batch_into(
        self,
        k: int,
        sources: Sequence[int],
        members,
        dists,
        parents,
        offsets: array,
        *,
        base: int = 0,
        threads: int | None = None,
    ) -> int:
        """One-call, optionally threaded :meth:`k_nearest_into`.

        Source ``i`` provisionally owns the slab range starting at
        ``base + i * min(k, n)`` -- the buffers must hold
        ``base + len(sources) * min(k, n)`` entries (exactly the capacity
        the substrate build preallocates) -- and rows are compacted left
        after the join, reproducing the serial append layout.  Falls back
        to :meth:`k_nearest_into` when the capacity contract cannot hold.
        """
        if k <= 0:
            raise ValueError(f"k must be > 0, got {k}")
        src = sources if isinstance(sources, array) else array("q", sources)
        self._check_sources(src)
        if not src:
            return base
        cap = min(k, self.num_nodes)
        needed = base + len(src) * cap
        if (
            self.tier == "c"
            and threads != 0
            and memoryview(members).nbytes >= 8 * needed
        ):
            p_sources = (ctypes.c_int64 * len(src)).from_buffer(src)
            span = len(src) * cap
            p_members = (ctypes.c_int64 * span).from_buffer(members, 8 * base)
            p_dists = (ctypes.c_double * span).from_buffer(dists, 8 * base)
            p_parents = (ctypes.c_int64 * span).from_buffer(parents, 8 * base)
            row_ends = array("q", bytes(8 * len(src)))
            p_row_ends = (ctypes.c_int64 * len(src)).from_buffer(row_ends)
            total = self._clib.k_nearest_batch(
                *self._batch_prefix(p_sources, len(src)),
                k,
                p_members,
                p_dists,
                p_parents,
                p_row_ends,
                kernel_threads(threads),
            )
            if total >= 0:
                offsets.extend(
                    array("q", [base + end for end in row_ends])
                    if base
                    else row_ends
                )
                return base + total
        return self.k_nearest_into(
            k, src, members, dists, parents, offsets, base=base
        )

    def k_nearest_batch_flat(
        self,
        k: int,
        nodes: Iterable[int] | None = None,
        *,
        threads: int | None = None,
    ) -> tuple[array, array, array, array]:
        """One-call, optionally threaded :meth:`batched_k_nearest_flat`.

        Allocates the provisional slab capacity itself and trims to the
        actual fill; layout and contents match the serial flat driver.
        """
        sources = range(self.num_nodes) if nodes is None else nodes
        src = sources if isinstance(sources, array) else array("q", sources)
        capacity = min(k, self.num_nodes) * len(src)
        members = array("q", bytes(8 * capacity))
        dists = array("d", bytes(8 * capacity))
        parents = array("q", bytes(8 * capacity))
        offsets = array("q", [0])
        position = self.k_nearest_batch_into(
            k, src, members, dists, parents, offsets, threads=threads
        )
        if position < capacity:
            members = members[:position]
            dists = dists[:position]
            parents = parents[:position]
        return offsets, members, dists, parents

    def radius_batch_flat(
        self,
        radii: Sequence[float],
        nodes: Sequence[int] | None = None,
        *,
        inclusive: bool = False,
        threads: int | None = None,
    ) -> tuple[array, array, array, array]:
        """One-call, optionally threaded :meth:`batched_radius_flat`.

        Row sizes are unknown upfront, so each kernel thread grows a
        private buffer for its contiguous source chunk and the chunks are
        concatenated in task order after the join -- the same deterministic
        merge as the process pool's, performed in C.
        """
        sources = range(self.num_nodes) if nodes is None else nodes
        if len(radii) != len(sources):
            raise ValueError(
                f"radii must have exactly {len(sources)} entries, "
                f"got {len(radii)}"
            )
        if self.tier != "c" or threads == 0 or not len(radii):
            return self.batched_radius_flat(radii, nodes, inclusive=inclusive)
        src = array("q", sources)
        self._check_sources(src)
        radii_arr = radii if isinstance(radii, array) else array("d", radii)
        if min(radii_arr) < 0:
            raise ValueError(f"radius must be >= 0, got {min(radii_arr)}")
        p_sources = (ctypes.c_int64 * len(src)).from_buffer(src)
        p_radii = (ctypes.c_double * len(src)).from_buffer(radii_arr)
        row_ends = array("q", bytes(8 * len(src)))
        p_row_ends = (ctypes.c_int64 * len(src)).from_buffer(row_ends)
        out_members = ctypes.POINTER(ctypes.c_int64)()
        out_dists = ctypes.POINTER(ctypes.c_double)()
        out_parents = ctypes.POINTER(ctypes.c_int64)()
        total = self._clib.radius_batch(
            *self._batch_prefix(p_sources, len(src)),
            p_radii,
            _RADIUS_INCLUSIVE if inclusive else _RADIUS_STRICT,
            p_row_ends,
            ctypes.byref(out_members),
            ctypes.byref(out_dists),
            ctypes.byref(out_parents),
            kernel_threads(threads),
        )
        if total < 0:
            return self.batched_radius_flat(radii, nodes, inclusive=inclusive)
        try:
            members = array("q")
            members.frombytes(ctypes.string_at(out_members, 8 * total))
            dists = array("d")
            dists.frombytes(ctypes.string_at(out_dists, 8 * total))
            parents = array("q")
            parents.frombytes(ctypes.string_at(out_parents, 8 * total))
        finally:
            self._clib.buffer_free(out_members)
            self._clib.buffer_free(out_dists)
            self._clib.buffer_free(out_parents)
        offsets = array("q", [0])
        offsets.extend(row_ends)
        return offsets, members, dists, parents

    # -- batched drivers ----------------------------------------------------

    def batched_spt(
        self, sources: Iterable[int], *, fill: float = 0.0
    ) -> Iterator[tuple[int, list[float], list[int]]]:
        """Yield ``(source, dist_row, parent_row)`` for each source.

        All searches share one scratch arena; only the dense output rows are
        allocated per source.
        """
        for source in sources:
            dist_row, parent_row = self.spt_rows(source, fill=fill)
            yield source, dist_row, parent_row

    def batched_k_nearest(
        self, k: int, nodes: Iterable[int] | None = None
    ) -> list[tuple[dict[int, float], dict[int, int]]]:
        """Run :meth:`dijkstra_k_nearest` for every node (or ``nodes``)."""
        if k <= 0:
            raise ValueError(f"k must be > 0, got {k}")
        sources = range(self.num_nodes) if nodes is None else nodes
        return [self._as_dicts(self._search(v, k=k)) for v in sources]

    def batched_radius(
        self,
        radii: Sequence[float],
        nodes: Sequence[int] | None = None,
        *,
        inclusive: bool = False,
    ) -> list[tuple[dict[int, float], dict[int, int]]]:
        """Run :meth:`dijkstra_radius` per node with its own radius.

        ``radii`` aligns with ``nodes`` (default: all nodes in id order) and
        must cover every source -- a short list would otherwise silently
        truncate the batch.  The boundary is strict unless ``inclusive``
        (see :meth:`dijkstra_radius`).
        """
        sources = range(self.num_nodes) if nodes is None else nodes
        if len(radii) != len(sources):
            raise ValueError(
                f"radii must have exactly {len(sources)} entries, "
                f"got {len(radii)}"
            )
        results = []
        for node, radius in zip(sources, radii):
            if radius < 0:
                raise ValueError(f"radius must be >= 0, got {radius}")
            results.append(
                self._as_dicts(
                    self._search(node, radius=radius, inclusive=inclusive)
                )
            )
        return results

    def batched_target_distances(
        self, pairs: Iterable[tuple[int, int]], *, threads: int | None = None
    ) -> dict[tuple[int, int], float]:
        """Shortest distances for source-destination pairs.

        Pairs are grouped by source; each distinct source runs one
        early-stopping search.  On the C tier the grouped batch goes down
        in a single ``target_distances_batch`` call (sources fanned over
        kernel threads, each with its own arena); ``threads=0`` or the
        Python tier fall back to the serial per-source loop over the
        shared arena.  Raises ``ValueError`` if any target is unreachable
        from its source.
        """
        by_source: dict[int, set[int]] = {}
        for source, target in pairs:
            by_source.setdefault(source, set()).add(target)
        n = self.num_nodes
        if (
            self.tier == "c"
            and threads != 0
            and by_source
            and all(
                0 <= source < n and all(0 <= t < n for t in targets)
                for source, targets in by_source.items()
            )
        ):
            grouped = sorted(by_source)
            src = array("q", grouped)
            tgt_offsets = array("q", [0])
            tgt_nodes = array("q")
            for source in grouped:
                tgt_nodes.extend(sorted(by_source[source]))
                tgt_offsets.append(len(tgt_nodes))
            dist_out = array("d", bytes(8 * len(tgt_nodes)))
            p_sources = (ctypes.c_int64 * len(src)).from_buffer(src)
            status = self._clib.target_distances_batch(
                *self._batch_prefix(p_sources, len(src)),
                (ctypes.c_int64 * len(tgt_offsets)).from_buffer(tgt_offsets),
                (ctypes.c_int64 * len(tgt_nodes)).from_buffer(tgt_nodes),
                (ctypes.c_double * len(tgt_nodes)).from_buffer(dist_out),
                kernel_threads(threads),
            )
            if status == 0:
                flat = 0
                result = {}
                for index, source in enumerate(grouped):
                    for _ in range(tgt_offsets[index], tgt_offsets[index + 1]):
                        result[(source, tgt_nodes[flat])] = dist_out[flat]
                        flat += 1
                return result
            if status <= -2:
                flat = -status - 2
                from bisect import bisect_right

                source = grouped[bisect_right(tgt_offsets, flat) - 1]
                raise ValueError(
                    f"node {tgt_nodes[flat]} unreachable from {source}; "
                    "topology must be connected"
                )
            # status == -1: allocation failure; run the serial loop below.
        result = {}
        c_tier = self.tier == "c"
        for source, targets in by_source.items():
            self._search(source, targets=targets)
            generation = self._generation
            # A target settled iff it was stamped: the search only stops
            # early once every target settled, and at exhaustion every
            # discovered node is settled.
            settled = self._c["seen"] if c_tier else self._done
            dist = self._dist
            for target in targets:
                if settled[target] != generation:
                    raise ValueError(
                        f"node {target} unreachable from {source}; "
                        "topology must be connected"
                    )
                result[(source, target)] = dist[target]
        return result


# -- shared-memory publication ----------------------------------------------


def _attach_untracked(name: str):
    """Attach to an existing segment without resource-tracker registration.

    ``SharedMemory(name=...)`` registers the segment with the process-wide
    resource tracker, which unlinks every registered name at shutdown and
    complains about "leaks".  Attachers must not own the segment's name --
    the publisher unlinks it exactly once -- so tracking is suppressed:
    via ``track=False`` on CPython 3.13+, and by making registration a
    no-op for the duration of the attach on older versions (the documented
    community workaround; the tracker API is internal but stable).
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        pass
    from multiprocessing import resource_tracker

    original_register = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original_register


@dataclass(frozen=True)
class SharedCSRHandle:
    """Picklable description of a published CSR snapshot.

    Everything a worker needs to attach with :meth:`CSRGraph.from_shared`:
    the shared-memory segment name, the slab dimensions, the precomputed
    :class:`WeightProfile` (so attachers skip the O(E) profiling pass), and
    the publisher's forced-kernel override (``None`` = auto-select).
    """

    shm_name: str
    num_nodes: int
    num_arcs: int
    profile: WeightProfile
    kernel: str | None


class SharedCSR:
    """Publish one immutable CSR snapshot in a shared-memory segment.

    The segment holds the three CSR slabs back to back
    (``offsets | neighbors | weights``); workers map it with
    :meth:`CSRGraph.from_shared` instead of rebuilding the snapshot from a
    pickled :class:`Topology`.  The publisher owns the segment's lifetime:
    call :meth:`close` (or use as a context manager) after the consumers
    are done.  Snapshots are immutable by contract -- ``Topology.csr()``
    invalidates on mutation, so a publisher can never capture a stale view.
    """

    def __init__(self, csr: CSRGraph, *, kernel: str | None = None) -> None:
        from multiprocessing import shared_memory

        n = csr.num_nodes
        arcs = len(csr.neighbors)
        offsets_end = 8 * (n + 1)
        neighbors_end = offsets_end + 8 * arcs
        total = neighbors_end + 8 * arcs
        self._shm = shared_memory.SharedMemory(create=True, size=max(total, 1))
        buf = self._shm.buf
        buf[:offsets_end].cast("q")[:] = csr.offsets
        buf[offsets_end:neighbors_end].cast("q")[:] = csr.neighbors
        buf[neighbors_end:total].cast("d")[:] = csr.weights
        self.handle = SharedCSRHandle(
            shm_name=self._shm.name,
            num_nodes=n,
            num_arcs=arcs,
            profile=csr.profile,
            kernel=kernel,
        )

    def close(self) -> None:
        """Unmap and unlink the segment (idempotent)."""
        if self._shm is None:
            return
        try:
            self._shm.close()
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass
        self._shm = None

    def __enter__(self) -> "SharedCSR":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# -- multiprocessing fan-out ------------------------------------------------
#
# The per-node vicinity and cluster builds are embarrassingly parallel: every
# search is independent and the graph is read-only.  The parent publishes its
# CSR snapshot once via shared memory and each worker attaches a zero-copy
# view (private scratch arena, shared slabs) -- no per-worker snapshot
# rebuild and no O(E) topology pickle per worker.  If shared memory is
# unavailable (no /dev/shm, exotic platforms), the fan-out falls back to the
# historical path of shipping the pickled topology and rebuilding per
# worker.  The parent's kernel choice (including any forced override) is
# forwarded so the workers run the same kernel either way.

_WORKER_CSR: CSRGraph | None = None


def _parallel_init(topology: "Topology", kernel: str | None = None) -> None:
    global _WORKER_CSR
    _WORKER_CSR = CSRGraph.from_topology(topology, kernel=kernel)


def _shared_init(handle: SharedCSRHandle) -> None:
    global _WORKER_CSR
    _WORKER_CSR = CSRGraph.from_shared(handle)


def _k_nearest_chunk(
    task: tuple[int, list[int]]
) -> list[tuple[dict[int, float], dict[int, int]]]:
    k, nodes = task
    assert _WORKER_CSR is not None
    return _WORKER_CSR.batched_k_nearest(k, nodes)


def _radius_chunk(
    task: tuple[list[int], list[float]]
) -> list[tuple[dict[int, float], dict[int, int]]]:
    nodes, radii = task
    assert _WORKER_CSR is not None
    return _WORKER_CSR.batched_radius(radii, nodes)


def _k_nearest_flat_chunk(
    task: tuple[int, list[int]]
) -> tuple[array, array, array, array]:
    k, nodes = task
    assert _WORKER_CSR is not None
    return _WORKER_CSR.batched_k_nearest_flat(k, nodes)


def _radius_flat_chunk(
    task: tuple[list[int], list[float]]
) -> tuple[array, array, array, array]:
    nodes, radii = task
    assert _WORKER_CSR is not None
    return _WORKER_CSR.batched_radius_flat(radii, nodes)


def _merge_flat_chunks(
    chunked: Sequence[tuple[array, array, array, array]]
) -> tuple[array, array, array, array]:
    """Concatenate per-chunk flat rows in chunk order (deterministic merge).

    Chunks partition the sources contiguously in id order and ``pool.map``
    returns them in task order, so the merged result is positionally
    identical to the serial flat driver regardless of worker scheduling.
    """
    offsets = array("q", [0])
    members = array("q")
    dists = array("d")
    parents = array("q")
    for chunk_offsets, chunk_members, chunk_dists, chunk_parents in chunked:
        base = offsets[-1]
        offsets.extend(
            array("q", [base + offset for offset in chunk_offsets[1:]])
            if base
            else chunk_offsets[1:]
        )
        members += chunk_members
        dists += chunk_dists
        parents += chunk_parents
    return offsets, members, dists, parents


def _chunks(items: list, count: int) -> list[list]:
    size = max(1, -(-len(items) // count))
    return [items[i : i + size] for i in range(0, len(items), size)]


def _publish_csr(
    topology: "Topology", kernel: str | None
) -> "SharedCSR | None":
    """Publish the topology's snapshot for a fan-out; None = fall back."""
    csr = (
        topology.csr()
        if kernel is None
        else CSRGraph.from_topology(topology, kernel=kernel)
    )
    try:
        return SharedCSR(csr, kernel=kernel)
    except Exception:
        return None


def _pool_args(
    topology: "Topology", kernel: str | None, shared: "SharedCSR | None"
) -> tuple:
    if shared is not None:
        return _shared_init, (shared.handle,)
    return _parallel_init, (topology, kernel)


def parallel_k_nearest(
    topology: "Topology", k: int, *, workers: int = 1, kernel: str | None = None
) -> list[tuple[dict[int, float], dict[int, int]]]:
    """Per-node *k*-nearest searches, optionally fanned out over processes.

    With ``workers <= 1`` this is the serial batched driver.  Results are
    identical either way (each search is independent and deterministic);
    ordering is by node id.  ``kernel`` forces a specific search kernel in
    the serial path *and* in every worker (default: per-profile auto
    selection, see :class:`CSRGraph`).  Workers attach to one shared-memory
    snapshot published by the parent (:class:`SharedCSR`) rather than each
    rebuilding their own.
    """
    nodes = list(topology.nodes())
    if workers <= 1 or len(nodes) < 4 * workers:
        if kernel is None:
            return topology.csr().batched_k_nearest(k)
        return CSRGraph.from_topology(topology, kernel=kernel).batched_k_nearest(k)
    from multiprocessing import Pool

    tasks = [(k, chunk) for chunk in _chunks(nodes, workers * 4)]
    shared = _publish_csr(topology, kernel)
    initializer, initargs = _pool_args(topology, kernel, shared)
    try:
        with Pool(workers, initializer=initializer, initargs=initargs) as pool:
            chunked = pool.map(_k_nearest_chunk, tasks)
    finally:
        if shared is not None:
            shared.close()
    return [result for chunk in chunked for result in chunk]


def parallel_k_nearest_flat(
    topology: "Topology",
    k: int,
    *,
    workers: int = 1,
    kernel: str | None = None,
) -> tuple[array, array, array, array]:
    """Flat-transport fan-out of :meth:`CSRGraph.batched_k_nearest_flat`.

    Unlike :func:`parallel_k_nearest`, workers ship four typed arrays per
    chunk (pickled as raw bytes) instead of per-node dict pairs, and the
    parent concatenates them in chunk order -- no dict boxing on either
    side of the pipe.  Results are positionally identical to the serial
    driver for any worker count.
    """
    nodes = list(topology.nodes())
    if workers <= 1 or len(nodes) < 4 * workers:
        if kernel is None:
            return topology.csr().batched_k_nearest_flat(k)
        return CSRGraph.from_topology(
            topology, kernel=kernel
        ).batched_k_nearest_flat(k)
    from multiprocessing import Pool

    tasks = [(k, chunk) for chunk in _chunks(nodes, workers * 4)]
    shared = _publish_csr(topology, kernel)
    initializer, initargs = _pool_args(topology, kernel, shared)
    try:
        with Pool(workers, initializer=initializer, initargs=initargs) as pool:
            chunked = pool.map(_k_nearest_flat_chunk, tasks)
    finally:
        if shared is not None:
            shared.close()
    return _merge_flat_chunks(chunked)


def parallel_radius_flat(
    topology: "Topology",
    radii: Sequence[float],
    *,
    workers: int = 1,
    kernel: str | None = None,
) -> tuple[array, array, array, array]:
    """Flat-transport fan-out of :meth:`CSRGraph.batched_radius_flat`.

    ``radii[v]`` bounds node ``v``'s search (strict boundary); workers and
    merge behave as in :func:`parallel_k_nearest_flat`.
    """
    nodes = list(topology.nodes())
    if len(radii) != len(nodes):
        raise ValueError(
            f"radii must have exactly {len(nodes)} entries, got {len(radii)}"
        )
    if workers <= 1 or len(nodes) < 4 * workers:
        if kernel is None:
            return topology.csr().batched_radius_flat(radii)
        return CSRGraph.from_topology(
            topology, kernel=kernel
        ).batched_radius_flat(radii)
    from multiprocessing import Pool

    node_chunks = _chunks(nodes, workers * 4)
    tasks = []
    start = 0
    for chunk in node_chunks:
        tasks.append((chunk, list(radii[start : start + len(chunk)])))
        start += len(chunk)
    shared = _publish_csr(topology, kernel)
    initializer, initargs = _pool_args(topology, kernel, shared)
    try:
        with Pool(workers, initializer=initializer, initargs=initargs) as pool:
            chunked = pool.map(_radius_flat_chunk, tasks)
    finally:
        if shared is not None:
            shared.close()
    return _merge_flat_chunks(chunked)


def parallel_radius(
    topology: "Topology",
    radii: Sequence[float],
    *,
    workers: int = 1,
    kernel: str | None = None,
) -> list[tuple[dict[int, float], dict[int, int]]]:
    """Per-node radius-bounded searches, optionally fanned out over processes.

    ``radii[v]`` bounds node ``v``'s search (strict boundary, matching the
    S4 cluster definition).  Results are ordered by node id.  ``kernel``
    forces a specific search kernel everywhere, and workers share one
    published snapshot, as in :func:`parallel_k_nearest`.
    """
    nodes = list(topology.nodes())
    if len(radii) != len(nodes):
        raise ValueError(
            f"radii must have exactly {len(nodes)} entries, got {len(radii)}"
        )
    if workers <= 1 or len(nodes) < 4 * workers:
        if kernel is None:
            return topology.csr().batched_radius(radii)
        return CSRGraph.from_topology(topology, kernel=kernel).batched_radius(radii)
    from multiprocessing import Pool

    node_chunks = _chunks(nodes, workers * 4)
    tasks = []
    start = 0
    for chunk in node_chunks:
        tasks.append((chunk, list(radii[start : start + len(chunk)])))
        start += len(chunk)
    shared = _publish_csr(topology, kernel)
    initializer, initargs = _pool_args(topology, kernel, shared)
    try:
        with Pool(workers, initializer=initializer, initargs=initargs) as pool:
            chunked = pool.map(_radius_chunk, tasks)
    finally:
        if shared is not None:
            shared.close()
    return [result for chunk in chunked for result in chunk]
