"""Dijkstra variants tuned for compact routing (stable public API).

The compact-routing protocols need several flavors of shortest-path search:

* Full single-source Dijkstra (landmark shortest-path trees, stretch
  denominators).
* *k-nearest* truncated Dijkstra -- "the Θ(√(n log n)) nodes closest to v"
  that define a node's vicinity (§4.2).
* *Radius-bounded* Dijkstra -- used to build S4 clusters, where node ``w``
  belongs to ``v``'s cluster iff ``d(v, w) < d(w, ℓ_w)``; we run a search
  from ``w`` bounded by that radius.
* Path extraction from predecessor maps and path-length evaluation, used by
  the stretch and congestion metrics.

Determinism guarantees
----------------------
All functions operate on :class:`repro.graphs.Topology` and apply one shared
rule in every variant: nodes settle in ``(distance, node id)`` order, and
equal-distance predecessor ties resolve toward the smaller predecessor id.
The guarantee holds across engines (CSR vs reference), across the CSR
kernels (BFS / Dial bucket queue / indexed 4-ary heap), and across the
compiled-C and pure-Python tiers, which is what lets the differential tests
compare them bit for bit -- and what makes every experiment reproducible
from its seed alone.

Engine dispatch
---------------
Since the CSR kernel refactor these functions are thin wrappers: by default
they dispatch to the flat-array engine in :mod:`repro.graphs.csr`, cached
per topology via :meth:`Topology.csr` (the cache also holds the scratch
arena, which lives as long as the snapshot -- results returned here are
fresh dicts and never alias it).  The kernel is chosen per graph from the
cached :meth:`Topology.weight_profile`; see the decision table in
``docs/ARCHITECTURE.md``.  Selecting the ``"reference"`` engine
(:mod:`repro.graphs.engine`) routes every call to the original dict-based
implementation instead.

Examples
--------
>>> from repro.graphs.topology import Topology
>>> diamond = Topology.from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
>>> distances, predecessors = dijkstra(diamond, 0)
>>> distances[3]
2.0
>>> predecessors[3]  # tie between 1 and 2 resolves to the smaller id
1
>>> shortest_path(diamond, 0, 3)
[0, 1, 3]
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.graphs import _reference_paths
from repro.graphs.engine import get_engine
from repro.graphs.topology import Topology

__all__ = [
    "dijkstra",
    "dijkstra_k_nearest",
    "dijkstra_radius",
    "shortest_path_tree",
    "shortest_path",
    "extract_path",
    "path_length",
    "all_pairs_sampled_distances",
]


def dijkstra(
    topology: Topology,
    source: int,
    *,
    targets: Iterable[int] | None = None,
) -> tuple[dict[int, float], dict[int, int]]:
    """Single-source shortest paths from ``source``.

    Parameters
    ----------
    topology:
        The graph to search.
    source:
        Starting node.
    targets:
        Optional set of nodes; if given, the search stops as soon as all of
        them have been settled (distances for other settled nodes are still
        returned).

    Returns
    -------
    (distances, predecessors)
        ``distances[v]`` is the shortest distance from ``source`` to ``v`` for
        every reachable (settled) node; ``predecessors[v]`` is the previous
        hop on one shortest path (ties broken toward smaller node ids).
        ``predecessors`` has no entry for ``source``.
    """
    if get_engine() == "csr":
        return topology.csr().dijkstra(source, targets=targets)
    return _reference_paths.dijkstra(topology, source, targets=targets)


def dijkstra_k_nearest(
    topology: Topology,
    source: int,
    k: int,
) -> tuple[dict[int, float], dict[int, int]]:
    """Return the ``k`` nodes nearest to ``source`` (including ``source``).

    This is the vicinity computation of §4.2: the search stops once ``k``
    nodes have been settled.  Ties at the boundary are resolved by distance
    then node id, so the vicinity is deterministic.

    Returns
    -------
    (distances, predecessors)
        As in :func:`dijkstra`, restricted to the settled nodes.  If the
        connected component of ``source`` has fewer than ``k`` nodes, the
        whole component is returned.

    Examples
    --------
    >>> from repro.graphs.topology import Topology
    >>> line = Topology.from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
    >>> sorted(dijkstra_k_nearest(line, 2, 3)[0])
    [1, 2, 3]
    """
    if get_engine() == "csr":
        return topology.csr().dijkstra_k_nearest(source, k)
    return _reference_paths.dijkstra_k_nearest(topology, source, k)


def dijkstra_radius(
    topology: Topology,
    source: int,
    radius: float,
    *,
    inclusive: bool = False,
) -> tuple[dict[int, float], dict[int, int]]:
    """Return all nodes within ``radius`` of ``source``.

    Parameters
    ----------
    inclusive:
        Controls the exact-boundary behavior.  If False (default) the
        boundary is strict (``d(source, v) < radius``), matching the S4
        cluster definition ``d(v, w) < d(w, ℓ_w)``: a node at *exactly*
        ``radius`` is excluded.  If True the comparison is ``<=`` and
        boundary nodes are included.  The source itself always settles,
        even with ``radius=0.0``.

    Examples
    --------
    A node at exactly the radius is excluded by default and included with
    ``inclusive=True``:

    >>> from repro.graphs.topology import Topology
    >>> path = Topology.from_edges(3, [(0, 1, 1.5), (1, 2, 1.5)])
    >>> sorted(dijkstra_radius(path, 0, 3.0)[0])
    [0, 1]
    >>> sorted(dijkstra_radius(path, 0, 3.0, inclusive=True)[0])
    [0, 1, 2]
    """
    if get_engine() == "csr":
        return topology.csr().dijkstra_radius(source, radius, inclusive=inclusive)
    return _reference_paths.dijkstra_radius(
        topology, source, radius, inclusive=inclusive
    )


def shortest_path_tree(
    topology: Topology, root: int
) -> tuple[dict[int, float], dict[int, int]]:
    """Return the shortest-path tree rooted at ``root``.

    Identical to :func:`dijkstra` over the whole component; named separately
    because landmarks use it to derive the explicit routes embedded in
    addresses (the tree gives, for every node, its parent toward the root).
    """
    return dijkstra(topology, root)


def extract_path(
    predecessors: Mapping[int, int], source: int, target: int
) -> list[int]:
    """Reconstruct the path ``source .. target`` from a predecessor map.

    The predecessor map must come from a search rooted at ``source``.

    Raises
    ------
    ValueError
        If ``target`` is not reachable in the predecessor map.
    """
    if target == source:
        return [source]
    path = [target]
    node = target
    visited = {target}
    while node != source:
        if node not in predecessors:
            raise ValueError(
                f"target {target} not reachable from {source} in predecessor map"
            )
        node = predecessors[node]
        if node in visited:
            raise ValueError("cycle detected in predecessor map")
        visited.add(node)
        path.append(node)
    path.reverse()
    return path


def shortest_path(topology: Topology, source: int, target: int) -> list[int]:
    """Return one shortest path from ``source`` to ``target`` as a node list."""
    _, predecessors = dijkstra(topology, source, targets=[target])
    return extract_path(predecessors, source, target)


def path_length(topology: Topology, path: Sequence[int]) -> float:
    """Return the total weight of ``path`` (a sequence of adjacent nodes).

    Raises
    ------
    ValueError
        If the path is empty or uses a non-existent edge.

    Examples
    --------
    >>> from repro.graphs.topology import Topology
    >>> path = Topology.from_edges(3, [(0, 1, 1.5), (1, 2, 2.0)])
    >>> path_length(path, [0, 1, 2])
    3.5
    """
    if not path:
        raise ValueError("path must contain at least one node")
    total = 0.0
    for u, v in zip(path, path[1:]):
        weight = topology.get_edge_weight(u, v)
        if weight is None:
            raise ValueError(f"path uses non-existent edge ({u}, {v})")
        total += weight
    return total


def all_pairs_sampled_distances(
    topology: Topology,
    pairs: Iterable[tuple[int, int]],
    *,
    threads: int | None = None,
) -> dict[tuple[int, int], float]:
    """Return shortest distances for the given source-destination pairs.

    Sources are grouped so each distinct source runs a single early-stopping
    search; on the CSR engine's C tier the whole grouped batch goes down
    in one ``target_distances_batch`` kernel call, its sources fanned over
    ``threads`` in-kernel threads (:meth:`CSRGraph.batched_target_distances`;
    ``0`` pins the serial per-source loop).  Used as the stretch
    denominator for sampled pairs on large topologies, as in §5.1.

    Raises
    ------
    ValueError
        If any target is unreachable from its source.
    """
    if get_engine() == "csr":
        return topology.csr().batched_target_distances(pairs, threads=threads)
    return _reference_paths.all_pairs_sampled_distances(topology, pairs)
