"""Incremental single-source shortest-path-tree repair.

The dynamics engine (:mod:`repro.dynamics.engine`) maintains one dense SPT
row per landmark across topology events.  Rebuilding every row from scratch
per event is what the replay oracle does; this module repairs a row in time
proportional to the *affected region* instead, while staying bit-identical
to a fresh kernel run on the mutated topology.

Bit-identity rests on two properties of the canonical search state (see the
determinism contract in :mod:`repro.graphs.shortest_paths`):

* **Distances** are the unique fixpoint of the Bellman equations evaluated
  in increasing-distance order over IEEE-754 floats.  Every repair here
  relaxes ``dist[u] + w`` with the same single float addition the kernels
  perform, and settles in increasing-distance order, so repaired distances
  are the same bit patterns a full search would produce.
* **Parents** are a pure function of the converged distances: the settled
  predecessor of ``v`` is the *minimum-id* neighbor ``u`` with
  ``dist[u] + w(u, v) == dist[v]`` (ties in the kernels' relaxation always
  resolve toward the smaller node id).  After distances are repaired, every
  node whose support set may have changed is re-canonicalized by a direct
  neighbor scan -- an idempotent operation that reproduces the kernel's
  parent exactly.

Rows use the dynamics convention ``inf / -1`` for unreachable nodes (the
converged-state substrate's dense rows historically use a ``0.0`` fill and
assume connectivity; the dynamics engine must survive partitions, so the
fill is explicit here).

All functions mutate ``dist`` / ``parent`` (dense, node-indexed, mutable
sequences) in place and return ``(dist_changed, parent_changed)`` node
lists, which the maintenance layer uses to refold closest landmarks and
charge update costs without diffing whole rows.
"""

from __future__ import annotations

import math
from heapq import heapify, heappop, heappush

from repro.graphs.shortest_paths import dijkstra
from repro.graphs.topology import Topology

__all__ = [
    "spt_dense",
    "canonical_parent",
    "repair_after_decrease",
    "repair_after_increase",
    "repair_after_detach",
]

_INF = math.inf


def spt_dense(
    topology: Topology, root: int
) -> tuple[list[float], list[int]]:
    """Full SPT from ``root`` as dense ``(dist, parent)`` rows.

    Unreachable nodes hold ``inf`` / ``-1``; the root holds ``0.0`` / ``-1``.
    Computed through the canonical engine kernels, so repaired rows can be
    compared against this bit for bit.
    """
    n = topology.num_nodes
    dist: list[float] = [_INF] * n
    parent: list[int] = [-1] * n
    distances, predecessors = dijkstra(topology, root)
    for node, value in distances.items():
        dist[node] = value
    for node, pred in predecessors.items():
        parent[node] = pred
    return dist, parent


def canonical_parent(
    topology: Topology, dist, node: int, root: int
) -> int:
    """The kernel-canonical parent of ``node`` given converged ``dist``.

    The minimum-id neighbor on a tight edge (``dist[u] + w == dist[node]``),
    ``-1`` for the root and for unreachable nodes.
    """
    if node == root or dist[node] == _INF:
        return -1
    target = dist[node]
    best = -1
    for neighbor, weight in topology.adjacency[node]:
        if dist[neighbor] + weight == target and (best < 0 or neighbor < best):
            best = neighbor
    return best


def _tree_children(parent, num_nodes: int) -> list[list[int]]:
    children: list[list[int]] = [[] for _ in range(num_nodes)]
    for node in range(num_nodes):
        pred = parent[node]
        if pred >= 0:
            children[pred].append(node)
    return children


def _collect_subtree(parent, num_nodes: int, top: int) -> list[int]:
    """Nodes in ``top``'s subtree of the current parent forest (inclusive)."""
    children = _tree_children(parent, num_nodes)
    out: list[int] = []
    stack = [top]
    while stack:
        node = stack.pop()
        out.append(node)
        stack.extend(children[node])
    return out


def _recanonicalize(
    topology: Topology, dist, parent, root: int, nodes
) -> list[int]:
    """Re-derive parents for ``nodes``; return those that actually changed."""
    changed: list[int] = []
    for node in nodes:
        canon = canonical_parent(topology, dist, node, root)
        if canon != parent[node]:
            parent[node] = canon
            changed.append(node)
    return changed


def _repair_region(
    topology: Topology, dist, parent, root: int, region: list[int],
    extra_recanon,
) -> tuple[list[int], list[int]]:
    """Recompute distances for ``region`` from its boundary; fix parents.

    ``region`` must be *closed under worsening*: every node whose distance
    could have changed is in it, and every node outside it keeps its exact
    pre-event distance.  Distances inside the region are re-derived by a
    multi-source Dijkstra seeded with the best boundary offer per node.
    """
    adjacency = topology.adjacency
    in_region = set(region)
    old = {node: dist[node] for node in region}
    best: dict[int, float] = {}
    for node in region:
        seed = _INF
        for neighbor, weight in adjacency[node]:
            if neighbor in in_region:
                continue
            candidate = dist[neighbor] + weight
            if candidate < seed:
                seed = candidate
        best[node] = seed
    heap = [(value, node) for node, value in best.items() if value < _INF]
    heapify(heap)
    while heap:
        value, node = heappop(heap)
        if value > best[node]:
            continue
        for neighbor, weight in adjacency[node]:
            if neighbor not in in_region:
                continue
            candidate = value + weight
            if candidate < best[neighbor]:
                best[neighbor] = candidate
                heappush(heap, (candidate, neighbor))
    dist_changed: list[int] = []
    for node in region:
        value = best[node]
        if value != old[node]:
            dist_changed.append(node)
        dist[node] = value

    recanon = set(region)
    recanon.update(extra_recanon)
    for node in dist_changed:
        recanon.update(neighbor for neighbor, _ in adjacency[node])
    parent_changed = _recanonicalize(
        topology, dist, parent, root, sorted(recanon)
    )
    return dist_changed, parent_changed


def repair_after_increase(
    topology: Topology, dist, parent, root: int, u: int, v: int
) -> tuple[list[int], list[int]]:
    """Repair one SPT row after edge ``{u, v}`` was removed or made heavier.

    Call *after* mutating the topology; ``dist`` / ``parent`` still hold the
    pre-event row.  If the edge was not a tree arc of this row, neither
    distances nor parents can change (the parent is the minimum-id tight
    neighbor, and a non-parent edge getting heavier or vanishing never
    alters that minimum) and the repair is O(1).  Otherwise the affected
    subtree is recomputed from its boundary.
    """
    if parent[v] == u:
        top = v
    elif parent[u] == v:
        top = u
    else:
        return [], []
    region = _collect_subtree(parent, topology.num_nodes, top)
    return _repair_region(
        topology, dist, parent, root, region, extra_recanon=(u, v)
    )


def repair_after_decrease(
    topology: Topology, dist, parent, root: int, u: int, v: int
) -> tuple[list[int], list[int]]:
    """Repair one SPT row after edge ``{u, v}`` was added or made lighter.

    Call *after* mutating the topology.  Strict improvements propagate
    outward from the endpoints; nodes whose distance ties the new offer
    only need their parent re-canonicalized.
    """
    adjacency = topology.adjacency
    weight = topology.edge_weight(u, v)
    improved: dict[int, float] = {}

    def current(node: int) -> float:
        value = improved.get(node)
        return dist[node] if value is None else value

    heap: list[tuple[float, int]] = []
    for source, target in ((u, v), (v, u)):
        if dist[source] == _INF:
            continue
        candidate = dist[source] + weight
        if candidate < current(target):
            improved[target] = candidate
            heappush(heap, (candidate, target))
    while heap:
        value, node = heappop(heap)
        if value > improved.get(node, _INF):
            continue
        for neighbor, edge_weight in adjacency[node]:
            candidate = value + edge_weight
            if candidate < current(neighbor):
                improved[neighbor] = candidate
                heappush(heap, (candidate, neighbor))

    dist_changed = sorted(improved)
    for node in dist_changed:
        dist[node] = improved[node]
    recanon = set(dist_changed)
    recanon.update((u, v))
    for node in dist_changed:
        recanon.update(neighbor for neighbor, _ in adjacency[node])
    parent_changed = _recanonicalize(
        topology, dist, parent, root, sorted(recanon)
    )
    return dist_changed, parent_changed


def repair_after_detach(
    topology: Topology, dist, parent, root: int, node: int
) -> tuple[list[int], list[int]]:
    """Repair one SPT row after *all* of ``node``'s edges were removed.

    Call after the mutation.  The affected region is ``node``'s old subtree
    (the whole reachable row minus the root when the detached node *is* the
    root); an already-unreachable node detaching changes nothing.
    """
    if dist[node] == _INF and node != root:
        return [], []
    region = _collect_subtree(parent, topology.num_nodes, root if node == root else node)
    if node == root:
        region = [other for other in region if other != root]
        if not region:
            return [], []
    return _repair_region(
        topology, dist, parent, root, region, extra_recanon=(node,)
    )
