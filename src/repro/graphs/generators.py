"""Topology generators used by the paper's evaluation.

The paper evaluates on four topology families (§5.1):

1. a 30,610-node AS-level map of the Internet,
2. a 192,244-node router-level map of the Internet,
3. G(n, m) random graphs with average degree 8,
4. geometric random graphs with average degree 8 and link latencies.

The CAIDA AS-level and router-level maps are not redistributable and not
available offline, so this module provides synthetic *Internet-like*
generators (preferential attachment for the AS level, a two-tier
backbone-plus-stub construction for the router level) that reproduce the
structural properties the evaluation depends on: heavy-tailed degree
distributions, small diameter, and the presence of highly "central" nodes
that blow up S4's clusters.  The substitution is documented in DESIGN.md §5.

Every generator returns a *connected* :class:`repro.graphs.Topology` and is
deterministic given its ``seed``.
"""

from __future__ import annotations

import math
import random

from repro.graphs.topology import Topology
from repro.utils.randomness import make_rng
from repro.utils.validation import require_positive

__all__ = [
    "gnm_random_graph",
    "geometric_random_graph",
    "internet_as_level",
    "internet_router_level",
    "ring_graph",
    "line_graph",
    "grid_graph",
    "star_graph",
    "two_level_tree",
]


def _ensure_connected(topology: Topology, rng: random.Random) -> None:
    """Connect components by adding random inter-component edges.

    All generators promise a connected result; rather than rejection-sampling
    whole graphs (which is slow for sparse parameter choices) we stitch
    components together with uniformly chosen endpoints.  The number of added
    edges is (number of components - 1), a vanishing perturbation.
    """
    components = topology.connected_components()
    if len(components) <= 1:
        return
    # Connect every other component to the largest one.
    components.sort(key=len, reverse=True)
    core = components[0]
    for component in components[1:]:
        u = rng.choice(core)
        v = rng.choice(component)
        topology.add_edge(u, v, 1.0)
        core = core + component


def gnm_random_graph(
    num_nodes: int,
    num_edges: int | None = None,
    *,
    average_degree: float = 8.0,
    seed: int = 0,
) -> Topology:
    """Return a connected G(n, m) random graph with unit edge weights.

    Parameters
    ----------
    num_nodes:
        Number of nodes ``n``.
    num_edges:
        Number of uniform-random edges ``m``.  If omitted, ``m`` is chosen so
        the average degree equals ``average_degree`` (8 in the paper).
    seed:
        RNG seed.
    """
    require_positive("num_nodes", num_nodes)
    rng = make_rng(seed, "gnm")
    if num_edges is None:
        num_edges = int(round(num_nodes * average_degree / 2.0))
    max_edges = num_nodes * (num_nodes - 1) // 2
    if num_edges > max_edges:
        raise ValueError(
            f"num_edges={num_edges} exceeds the maximum {max_edges} for "
            f"{num_nodes} nodes"
        )
    topology = Topology(num_nodes, name=f"gnm-{num_nodes}")
    added = 0
    seen: set[tuple[int, int]] = set()
    while added < num_edges:
        u = rng.randrange(num_nodes)
        v = rng.randrange(num_nodes)
        if u == v:
            continue
        key = (u, v) if u < v else (v, u)
        if key in seen:
            continue
        seen.add(key)
        topology.add_edge(u, v, 1.0)
        added += 1
    _ensure_connected(topology, rng)
    return topology


def geometric_random_graph(
    num_nodes: int,
    *,
    average_degree: float = 8.0,
    seed: int = 0,
    latency_scale: float = 100.0,
    latency_quantum: float | None = None,
) -> Topology:
    """Return a connected random geometric graph with latency edge weights.

    Nodes are placed uniformly in the unit square and connected when their
    Euclidean distance is below the radius that yields ``average_degree`` in
    expectation.  Edge weights are the Euclidean distances scaled by
    ``latency_scale`` (so a typical weight looks like a millisecond-scale
    latency rather than a fraction).  This is the latency-annotated topology
    family for which the paper reports the largest stretch differences
    between Disco and S4/VRR.

    ``latency_quantum`` optionally rounds every latency to the nearest
    positive multiple of the given quantum, modeling measured latencies with
    finite timer resolution.  Choosing a power-of-two quantum (e.g. 0.25)
    makes the topology eligible for the CSR engine's Dial bucket-queue
    kernel (see :class:`repro.graphs.csr.WeightProfile`); node placement and
    connectivity are unaffected by the rounding.
    """
    require_positive("num_nodes", num_nodes)
    require_positive("average_degree", average_degree)
    require_positive("latency_scale", latency_scale)
    if latency_quantum is not None:
        require_positive("latency_quantum", latency_quantum)
    rng = make_rng(seed, "geometric")
    # Expected degree for radius r in the unit square (ignoring boundary
    # effects) is n * pi * r^2; solve for r.
    radius = math.sqrt(average_degree / (math.pi * max(num_nodes - 1, 1)))
    positions = [(rng.random(), rng.random()) for _ in range(num_nodes)]
    name = (
        f"geometric-{num_nodes}"
        if latency_quantum is None
        else f"geometric-q-{num_nodes}"
    )
    topology = Topology(num_nodes, name=name)

    def latency(distance: float) -> float:
        value = distance * latency_scale
        if latency_quantum is None:
            return value
        return max(
            latency_quantum, round(value / latency_quantum) * latency_quantum
        )

    # Grid-bucket the points so neighbor search is O(n) rather than O(n^2).
    cell = radius if radius > 0 else 1.0
    buckets: dict[tuple[int, int], list[int]] = {}
    for index, (x, y) in enumerate(positions):
        buckets.setdefault((int(x / cell), int(y / cell)), []).append(index)

    for index, (x, y) in enumerate(positions):
        cx, cy = int(x / cell), int(y / cell)
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                for other in buckets.get((cx + dx, cy + dy), ()):
                    if other <= index:
                        continue
                    ox, oy = positions[other]
                    dist = math.hypot(x - ox, y - oy)
                    if dist <= radius and dist > 0:
                        topology.add_edge(index, other, latency(dist))

    # Stitch disconnected pieces together with latency proportional to the
    # actual Euclidean distance between the chosen endpoints.
    components = topology.connected_components()
    if len(components) > 1:
        components.sort(key=len, reverse=True)
        core = components[0]
        for component in components[1:]:
            u = rng.choice(core)
            v = rng.choice(component)
            ux, uy = positions[u]
            vx, vy = positions[v]
            dist = max(math.hypot(ux - vx, uy - vy), 1e-9)
            topology.add_edge(u, v, latency(dist))
            core = core + component
    return topology


def internet_as_level(
    num_nodes: int,
    *,
    attachment_edges: int = 2,
    seed: int = 0,
) -> Topology:
    """Return a synthetic AS-level Internet-like topology (unit weights).

    Substitution for the CAIDA AS-links map used in the paper: a linear
    preferential-attachment (Barabási–Albert style) graph.  Each arriving
    node attaches to ``attachment_edges`` existing nodes chosen with
    probability proportional to degree, which yields the heavy-tailed degree
    distribution and ~3-4 hop average path lengths characteristic of the AS
    graph.  Links are unweighted (weight 1.0), as in the paper's AS-level
    experiments.
    """
    require_positive("num_nodes", num_nodes)
    require_positive("attachment_edges", attachment_edges)
    if num_nodes <= attachment_edges:
        raise ValueError(
            "num_nodes must exceed attachment_edges "
            f"({num_nodes} <= {attachment_edges})"
        )
    rng = make_rng(seed, "as-level")
    topology = Topology(num_nodes, name=f"as-level-{num_nodes}")
    # Start from a small clique of attachment_edges + 1 nodes.
    seed_size = attachment_edges + 1
    repeated_nodes: list[int] = []
    for u in range(seed_size):
        for v in range(u + 1, seed_size):
            topology.add_edge(u, v, 1.0)
        repeated_nodes.extend([u] * attachment_edges)
    for new_node in range(seed_size, num_nodes):
        targets: set[int] = set()
        while len(targets) < attachment_edges:
            targets.add(rng.choice(repeated_nodes))
        for target in targets:
            topology.add_edge(new_node, target, 1.0)
            repeated_nodes.append(target)
        repeated_nodes.extend([new_node] * len(targets))
    return topology


def internet_router_level(
    num_nodes: int,
    *,
    backbone_fraction: float = 0.15,
    stub_degree: int = 2,
    seed: int = 0,
) -> Topology:
    """Return a synthetic router-level Internet-like topology (unit weights).

    Substitution for the CAIDA router-level map.  Construction:

    1. A *backbone* of ``backbone_fraction * n`` routers wired by preferential
       attachment (heavy-tailed core, like AS-level but denser).
    2. The remaining routers are *stub* routers, each attached to
       ``stub_degree`` backbone or previously placed stub routers chosen with
       probability proportional to degree.  This produces the long tail of
       degree-1/2 access routers plus a small set of very high-degree
       aggregation routers -- exactly the structure that makes S4's clusters
       explode on some nodes while Disco's vicinities stay bounded.
    """
    require_positive("num_nodes", num_nodes)
    if not 0.0 < backbone_fraction < 1.0:
        raise ValueError(
            f"backbone_fraction must be in (0, 1), got {backbone_fraction}"
        )
    require_positive("stub_degree", stub_degree)
    rng = make_rng(seed, "router-level")
    backbone_size = max(int(round(num_nodes * backbone_fraction)), stub_degree + 2)
    backbone_size = min(backbone_size, num_nodes)
    topology = Topology(num_nodes, name=f"router-level-{num_nodes}")

    # Backbone: preferential attachment with 3 edges per arriving router.
    backbone_attach = 3
    seed_size = min(backbone_attach + 1, backbone_size)
    repeated_nodes: list[int] = []
    for u in range(seed_size):
        for v in range(u + 1, seed_size):
            topology.add_edge(u, v, 1.0)
        repeated_nodes.extend([u] * backbone_attach)
    for new_node in range(seed_size, backbone_size):
        targets: set[int] = set()
        while len(targets) < min(backbone_attach, new_node):
            targets.add(rng.choice(repeated_nodes))
        for target in targets:
            topology.add_edge(new_node, target, 1.0)
            repeated_nodes.append(target)
        repeated_nodes.extend([new_node] * len(targets))

    # Stub routers: attach preferentially, mostly to the backbone.
    for new_node in range(backbone_size, num_nodes):
        attach = max(1, min(stub_degree, new_node))
        targets = set()
        while len(targets) < attach:
            targets.add(rng.choice(repeated_nodes))
        for target in targets:
            topology.add_edge(new_node, target, 1.0)
            repeated_nodes.append(target)
        # Stubs are appended once so they rarely attract future attachment,
        # keeping their degrees low (access-router behaviour).
        repeated_nodes.append(new_node)

    _ensure_connected(topology, rng)
    return topology


def ring_graph(num_nodes: int, *, weight: float = 1.0) -> Topology:
    """Return a ring of ``num_nodes`` nodes (the worst case for address size)."""
    require_positive("num_nodes", num_nodes)
    topology = Topology(num_nodes, name=f"ring-{num_nodes}")
    if num_nodes == 1:
        return topology
    for node in range(num_nodes):
        topology.add_edge(node, (node + 1) % num_nodes, weight)
    return topology


def line_graph(num_nodes: int, *, weight: float = 1.0) -> Topology:
    """Return a path graph of ``num_nodes`` nodes."""
    require_positive("num_nodes", num_nodes)
    topology = Topology(num_nodes, name=f"line-{num_nodes}")
    for node in range(num_nodes - 1):
        topology.add_edge(node, node + 1, weight)
    return topology


def grid_graph(rows: int, cols: int, *, weight: float = 1.0) -> Topology:
    """Return a ``rows x cols`` grid graph with uniform edge weights."""
    require_positive("rows", rows)
    require_positive("cols", cols)
    topology = Topology(rows * cols, name=f"grid-{rows}x{cols}")

    def node_id(r: int, c: int) -> int:
        return r * cols + c

    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                topology.add_edge(node_id(r, c), node_id(r, c + 1), weight)
            if r + 1 < rows:
                topology.add_edge(node_id(r, c), node_id(r + 1, c), weight)
    return topology


def star_graph(num_leaves: int, *, weight: float = 1.0) -> Topology:
    """Return a star: node 0 is the hub, nodes 1..num_leaves are leaves."""
    require_positive("num_leaves", num_leaves)
    topology = Topology(num_leaves + 1, name=f"star-{num_leaves}")
    for leaf in range(1, num_leaves + 1):
        topology.add_edge(0, leaf, weight)
    return topology


def two_level_tree(branching: int, *, child_weight: float = 2.0) -> Topology:
    """Return the §5.2 footnote-6 tree that breaks S4's state bound.

    Node 0 is the root with ``branching`` children at distance 1; each child
    has ``branching`` grandchildren attached along edges of weight
    ``child_weight`` (2 in the paper's construction).  On this topology the
    root ends up in the cluster of most grandchildren under S4's
    random-landmark rule, so its cluster is Θ(n).
    """
    require_positive("branching", branching)
    require_positive("child_weight", child_weight)
    num_nodes = 1 + branching + branching * branching
    topology = Topology(num_nodes, name=f"two-level-tree-{branching}")
    for child_index in range(branching):
        child = 1 + child_index
        topology.add_edge(0, child, 1.0)
        for grandchild_index in range(branching):
            grandchild = 1 + branching + child_index * branching + grandchild_index
            topology.add_edge(child, grandchild, child_weight)
    return topology
