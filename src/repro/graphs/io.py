"""Edge-list I/O for topologies.

The experiment harness can persist generated topologies (so a large topology
is generated once and reused across figures) and can ingest external
edge-list files (e.g. a real CAIDA-derived map if the user has one locally).
The format is plain text: one edge per line as ``u v [weight]``, ``#``
comments allowed, blank lines ignored.
"""

from __future__ import annotations

import os
from typing import TextIO

from repro.graphs.topology import Topology

__all__ = ["read_edge_list", "write_edge_list"]


def write_edge_list(topology: Topology, path: str | os.PathLike[str]) -> None:
    """Write ``topology`` to ``path`` in the edge-list format."""
    with open(path, "w", encoding="utf-8") as handle:
        _write_edge_list(topology, handle)


def _write_edge_list(topology: Topology, handle: TextIO) -> None:
    handle.write(f"# nodes {topology.num_nodes}\n")
    handle.write(f"# name {topology.name}\n")
    for u, v, weight in topology.edges():
        if weight == 1.0:
            handle.write(f"{u} {v}\n")
        else:
            handle.write(f"{u} {v} {weight!r}\n")


def read_edge_list(
    path: str | os.PathLike[str], *, name: str | None = None
) -> Topology:
    """Read a topology from an edge-list file.

    The node count is taken from the ``# nodes N`` header if present,
    otherwise inferred as ``max node id + 1``.  Unknown ``#`` comment lines
    are ignored.

    Raises
    ------
    ValueError
        On malformed lines (wrong field count, non-numeric fields, negative
        node ids, or node ids exceeding a declared node count).
    """
    # One code path: the streaming parser in repro.graphs.ingest owns the
    # format (and its documented error semantics); the dict backend replays
    # the parsed edges through add_edge, exactly as this function always
    # did.  Pass backend="csr" via ingest_file directly for the array-backed
    # fast path.
    from repro.graphs.ingest import ingest_file

    return ingest_file(path, fmt="edge-list", name=name, backend="dict")
