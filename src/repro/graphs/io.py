"""Edge-list I/O for topologies.

The experiment harness can persist generated topologies (so a large topology
is generated once and reused across figures) and can ingest external
edge-list files (e.g. a real CAIDA-derived map if the user has one locally).
The format is plain text: one edge per line as ``u v [weight]``, ``#``
comments allowed, blank lines ignored.
"""

from __future__ import annotations

import os
from typing import TextIO

from repro.graphs.topology import Topology

__all__ = ["read_edge_list", "write_edge_list"]


def write_edge_list(topology: Topology, path: str | os.PathLike[str]) -> None:
    """Write ``topology`` to ``path`` in the edge-list format."""
    with open(path, "w", encoding="utf-8") as handle:
        _write_edge_list(topology, handle)


def _write_edge_list(topology: Topology, handle: TextIO) -> None:
    handle.write(f"# nodes {topology.num_nodes}\n")
    handle.write(f"# name {topology.name}\n")
    for u, v, weight in topology.edges():
        if weight == 1.0:
            handle.write(f"{u} {v}\n")
        else:
            handle.write(f"{u} {v} {weight!r}\n")


def read_edge_list(
    path: str | os.PathLike[str], *, name: str | None = None
) -> Topology:
    """Read a topology from an edge-list file.

    The node count is taken from the ``# nodes N`` header if present,
    otherwise inferred as ``max node id + 1``.  Unknown ``#`` comment lines
    are ignored.

    Raises
    ------
    ValueError
        On malformed lines (wrong field count, non-numeric fields, negative
        node ids, or node ids exceeding a declared node count).
    """
    declared_nodes: int | None = None
    declared_name: str | None = None
    edges: list[tuple[int, int, float]] = []
    max_node = -1
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, raw_line in enumerate(handle, start=1):
            line = raw_line.strip()
            if not line:
                continue
            if line.startswith("#"):
                parts = line[1:].split()
                if len(parts) == 2 and parts[0] == "nodes":
                    declared_nodes = int(parts[1])
                elif len(parts) >= 2 and parts[0] == "name":
                    declared_name = " ".join(parts[1:])
                continue
            fields = line.split()
            if len(fields) not in (2, 3):
                raise ValueError(
                    f"{path}:{line_number}: expected 'u v [weight]', got {line!r}"
                )
            try:
                u = int(fields[0])
                v = int(fields[1])
                weight = float(fields[2]) if len(fields) == 3 else 1.0
            except ValueError as exc:
                raise ValueError(
                    f"{path}:{line_number}: non-numeric field in {line!r}"
                ) from exc
            if u < 0 or v < 0:
                raise ValueError(
                    f"{path}:{line_number}: negative node id in {line!r}"
                )
            edges.append((u, v, weight))
            max_node = max(max_node, u, v)

    num_nodes = declared_nodes if declared_nodes is not None else max_node + 1
    if max_node >= num_nodes:
        raise ValueError(
            f"{path}: edge references node {max_node} but header declares "
            f"only {num_nodes} nodes"
        )
    topology_name = name or declared_name or os.path.basename(str(path))
    topology = Topology(num_nodes, name=topology_name)
    topology.add_edges_from(edges)
    return topology
