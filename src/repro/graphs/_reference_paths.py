"""Reference dict-based Dijkstra kernels (the pre-CSR implementation).

This is the original heapq-over-dicts engine the repository started with,
preserved for two jobs:

* **Differential oracle** -- the tests in ``tests/test_graphs_csr.py`` assert
  that the CSR kernels return bit-identical distances and predecessors to
  these functions across topology families.
* **Perf baseline** -- ``repro bench`` times this engine as the "before"
  column of ``BENCH_kernels.json``.

The only deliberate change from the seed code: ``dijkstra_k_nearest`` and
``dijkstra_radius`` now apply the same equal-distance smaller-predecessor
tie-break that ``dijkstra`` always had, so every variant resolves tied
shortest paths to the same predecessor map (previously the truncated variants
kept whichever predecessor was pushed first).  Distances are unaffected.
"""

from __future__ import annotations

import heapq
from typing import Iterable

from repro.graphs.topology import Topology

__all__ = [
    "dijkstra",
    "dijkstra_k_nearest",
    "dijkstra_radius",
    "all_pairs_sampled_distances",
]


def dijkstra(
    topology: Topology,
    source: int,
    *,
    targets: Iterable[int] | None = None,
) -> tuple[dict[int, float], dict[int, int]]:
    """Single-source shortest paths from ``source`` (dict-based engine)."""
    adjacency = topology.adjacency
    distances: dict[int, float] = {}
    predecessors: dict[int, int] = {}
    remaining = set(targets) if targets is not None else None
    # Heap entries are (distance, node, predecessor); the node-id tie-break
    # comes from pushing candidates in neighbor order and relying on the
    # strict-improvement test below.
    heap: list[tuple[float, int, int]] = [(0.0, source, -1)]
    best_seen: dict[int, float] = {source: 0.0}
    best_pred: dict[int, int] = {}
    while heap:
        dist, node, pred = heapq.heappop(heap)
        if node in distances:
            continue
        distances[node] = dist
        if pred >= 0:
            predecessors[node] = pred
        if remaining is not None:
            remaining.discard(node)
            if not remaining:
                break
        for neighbor, weight in adjacency[node]:
            if neighbor in distances:
                continue
            candidate = dist + weight
            seen = best_seen.get(neighbor)
            if (
                seen is None
                or candidate < seen
                or (candidate == seen and node < best_pred.get(neighbor, node + 1))
            ):
                best_seen[neighbor] = candidate
                best_pred[neighbor] = node
                heapq.heappush(heap, (candidate, neighbor, node))
    return distances, predecessors


def dijkstra_k_nearest(
    topology: Topology,
    source: int,
    k: int,
) -> tuple[dict[int, float], dict[int, int]]:
    """The ``k`` nodes nearest ``source`` (dict-based engine)."""
    if k <= 0:
        raise ValueError(f"k must be > 0, got {k}")
    adjacency = topology.adjacency
    distances: dict[int, float] = {}
    predecessors: dict[int, int] = {}
    heap: list[tuple[float, int, int]] = [(0.0, source, -1)]
    best_seen: dict[int, float] = {source: 0.0}
    best_pred: dict[int, int] = {}
    while heap and len(distances) < k:
        dist, node, pred = heapq.heappop(heap)
        if node in distances:
            continue
        distances[node] = dist
        if pred >= 0:
            predecessors[node] = pred
        for neighbor, weight in adjacency[node]:
            if neighbor in distances:
                continue
            candidate = dist + weight
            seen = best_seen.get(neighbor)
            if (
                seen is None
                or candidate < seen
                or (candidate == seen and node < best_pred.get(neighbor, node + 1))
            ):
                best_seen[neighbor] = candidate
                best_pred[neighbor] = node
                heapq.heappush(heap, (candidate, neighbor, node))
    return distances, predecessors


def dijkstra_radius(
    topology: Topology,
    source: int,
    radius: float,
    *,
    inclusive: bool = False,
) -> tuple[dict[int, float], dict[int, int]]:
    """All nodes within ``radius`` of ``source`` (dict-based engine)."""
    if radius < 0:
        raise ValueError(f"radius must be >= 0, got {radius}")
    adjacency = topology.adjacency
    distances: dict[int, float] = {}
    predecessors: dict[int, int] = {}
    heap: list[tuple[float, int, int]] = [(0.0, source, -1)]
    best_seen: dict[int, float] = {source: 0.0}
    best_pred: dict[int, int] = {}
    while heap:
        dist, node, pred = heapq.heappop(heap)
        if node in distances:
            continue
        if inclusive:
            if dist > radius:
                break
        elif dist >= radius and node != source:
            break
        distances[node] = dist
        if pred >= 0:
            predecessors[node] = pred
        for neighbor, weight in adjacency[node]:
            if neighbor in distances:
                continue
            candidate = dist + weight
            seen = best_seen.get(neighbor)
            if (
                seen is None
                or candidate < seen
                or (candidate == seen and node < best_pred.get(neighbor, node + 1))
            ):
                best_seen[neighbor] = candidate
                best_pred[neighbor] = node
                heapq.heappush(heap, (candidate, neighbor, node))
    return distances, predecessors


def all_pairs_sampled_distances(
    topology: Topology, pairs: Iterable[tuple[int, int]]
) -> dict[tuple[int, int], float]:
    """Shortest distances for source-destination pairs (dict-based engine)."""
    by_source: dict[int, set[int]] = {}
    for source, target in pairs:
        by_source.setdefault(source, set()).add(target)
    result: dict[tuple[int, int], float] = {}
    for source, targets in by_source.items():
        distances, _ = dijkstra(topology, source, targets=targets)
        for target in targets:
            if target not in distances:
                raise ValueError(
                    f"node {target} unreachable from {source}; "
                    "topology must be connected"
                )
            result[(source, target)] = distances[target]
    return result
