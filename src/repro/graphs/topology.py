"""The :class:`Topology` class: an undirected, weighted network graph.

The paper's protocols operate on "an undirected connected network of n nodes
with arbitrary structure and link distances (i.e., link latencies or costs)"
(§4.1).  ``Topology`` models exactly that: nodes are consecutive integers
``0 .. n-1``, edges carry a positive float weight, and the adjacency structure
is stored as per-node lists of ``(neighbor, weight)`` pairs for fast iteration
inside the Dijkstra variants.

:class:`CSRTopology` is the dict-free fast path: an immutable subclass whose
edge set lives in flat typed slabs (the CSR arc slabs plus the canonical
kept-edge arrays) instead of per-node Python lists and a tuple-keyed dict.
The streaming ingestion pipeline (:mod:`repro.graphs.ingest`) builds it
directly from a text dataset without ever materializing Python edge objects,
and every ``Topology`` read API answers straight off the slabs -- the dict
structures are materialized lazily only if legacy dict-path code touches
them, which keeps the dict backend available as the differential oracle.
"""

from __future__ import annotations

from array import array
from typing import TYPE_CHECKING, Callable, Iterable, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graphs.csr import CSRGraph, WeightProfile

__all__ = ["Topology", "CSRTopology", "TOPOLOGY_SLAB_SCHEMA"]

#: On-disk raw-slab layout version for :meth:`CSRTopology.save_slabs` /
#: :meth:`CSRTopology.from_slab_dir`: a directory holding ``manifest.json``
#: plus one little-endian 8-byte-item ``<slab name>.bin`` file per slab.
TOPOLOGY_SLAB_SCHEMA = "repro-topology-slabs/v1"


class Topology:
    """An undirected weighted graph over nodes ``0 .. n-1``.

    Parameters
    ----------
    num_nodes:
        Number of nodes.  Nodes are implicitly the integers ``0 .. n-1``.
    name:
        Optional human-readable label (e.g. ``"gnm-1024"``) used in reports.

    Notes
    -----
    * Self-loops are rejected; parallel edges collapse to the smaller weight.
    * Edge weights must be strictly positive (they are link latencies/costs).
    * The class is mutable during construction (``add_edge``), and all reads
      are O(1)/O(degree); the shortest-path algorithms in
      :mod:`repro.graphs.shortest_paths` read ``topology.adjacency`` directly.
    """

    __slots__ = (
        "_num_nodes",
        "_adjacency",
        "_edge_weights",
        "_csr",
        "_weight_profile",
        "_content_key",
        "name",
    )

    def __init__(self, num_nodes: int, *, name: str = "topology") -> None:
        if num_nodes < 0:
            raise ValueError(f"num_nodes must be >= 0, got {num_nodes}")
        self._num_nodes = int(num_nodes)
        self._adjacency: list[list[tuple[int, float]]] = [
            [] for _ in range(self._num_nodes)
        ]
        self._edge_weights: dict[tuple[int, int], float] = {}
        self._csr: "CSRGraph | None" = None
        self._weight_profile: "WeightProfile | None" = None
        self._content_key: str | None = None
        self.name = name

    # -- construction -----------------------------------------------------

    def add_edge(self, u: int, v: int, weight: float = 1.0) -> None:
        """Add the undirected edge ``{u, v}`` with the given positive weight.

        Adding an existing edge keeps the smaller of the old and new weights.
        """
        self._check_node(u)
        self._check_node(v)
        if u == v:
            raise ValueError(f"self-loops are not allowed (node {u})")
        if weight <= 0:
            raise ValueError(f"edge weight must be > 0, got {weight}")
        key = (u, v) if u < v else (v, u)
        existing = self._edge_weights.get(key)
        if existing is not None:
            if weight < existing:
                self._edge_weights[key] = float(weight)
                self._replace_adjacency_weight(u, v, float(weight))
                self._replace_adjacency_weight(v, u, float(weight))
                self._refresh_caches(
                    lambda csr: csr.with_weight(u, v, weight)
                )
            return
        self._edge_weights[key] = float(weight)
        self._adjacency[u].append((v, float(weight)))
        self._adjacency[v].append((u, float(weight)))
        self._refresh_caches(lambda csr: csr.with_edge(u, v, weight))

    def _invalidate_caches(self) -> None:
        """Drop every derived snapshot after a mutation.

        The CSR kernel snapshot, the weight profile, and the content key are
        all pure functions of the edge set; they are invalidated together so
        no caller (including a shared-memory publisher) can observe a stale
        view of a mutated topology.
        """
        self._csr = None
        self._weight_profile = None
        self._content_key = None

    def _refresh_caches(
        self, patch: "Callable[[CSRGraph], CSRGraph]"
    ) -> None:
        """Advance the derived snapshots across a single-edge mutation.

        The content key is always dropped (recomputed on demand).  When a
        CSR snapshot is live and array-backed, it is *patched* into a fresh
        snapshot via C-level slab splicing instead of being rebuilt from
        scratch on the next :meth:`csr` call -- the discrete-event churn
        engine mutates one edge per event, and the O(E) per-arc rebuild
        (plus the O(E) weight rescan) would otherwise dominate its
        per-event budget.  With no live snapshot (the common construction
        path) this is exactly :meth:`_invalidate_caches`.
        """
        self._content_key = None
        csr = self._csr
        self._csr = None
        self._weight_profile = None
        if csr is not None and isinstance(csr.offsets, array):
            patched = patch(csr)
            self._csr = patched
            self._weight_profile = patched.profile

    def remove_edge(self, u: int, v: int) -> float:
        """Remove the undirected edge ``{u, v}``; return its weight.

        The inverse of :meth:`add_edge`, used by the dynamics engine to
        apply link-failure events in place.  Removing then re-adding an
        edge yields a topology that compares ``==`` (and shares a
        ``content_key``) with the original: equality is defined over the
        edge-weight table, not adjacency insertion order, and every
        derived snapshot (CSR, weight profile, content key) is
        invalidated by the mutation.

        Raises
        ------
        KeyError
            If the edge does not exist.
        """
        self._check_node(u)
        self._check_node(v)
        key = (u, v) if u < v else (v, u)
        weight = self._edge_weights.pop(key)  # KeyError if absent
        self._adjacency[u] = [
            pair for pair in self._adjacency[u] if pair[0] != v
        ]
        self._adjacency[v] = [
            pair for pair in self._adjacency[v] if pair[0] != u
        ]
        self._refresh_caches(lambda csr: csr.without_edge(u, v))
        return weight

    def set_edge_weight(self, u: int, v: int, weight: float) -> float:
        """Set the weight of the existing edge ``{u, v}``; return the old one.

        Unlike :meth:`add_edge` (which only ever *lowers* the stored weight
        of a duplicate edge), this models a link-cost change event and may
        raise or lower the weight.

        Raises
        ------
        KeyError
            If the edge does not exist.
        ValueError
            If the weight is not strictly positive.
        """
        self._check_node(u)
        self._check_node(v)
        if weight <= 0:
            raise ValueError(f"edge weight must be > 0, got {weight}")
        key = (u, v) if u < v else (v, u)
        old = self._edge_weights[key]  # KeyError if absent
        if float(weight) == old:
            return old
        self._edge_weights[key] = float(weight)
        self._replace_adjacency_weight(u, v, float(weight))
        self._replace_adjacency_weight(v, u, float(weight))
        self._refresh_caches(lambda csr: csr.with_weight(u, v, weight))
        return old

    def add_edges_from(
        self, edges: Iterable[tuple[int, int] | tuple[int, int, float]]
    ) -> None:
        """Add many edges; each item is ``(u, v)`` or ``(u, v, weight)``."""
        for edge in edges:
            if len(edge) == 2:
                u, v = edge  # type: ignore[misc]
                self.add_edge(u, v)
            else:
                u, v, w = edge  # type: ignore[misc]
                self.add_edge(u, v, w)

    def _replace_adjacency_weight(self, u: int, v: int, weight: float) -> None:
        row = self._adjacency[u]
        for index, (neighbor, _) in enumerate(row):
            if neighbor == v:
                row[index] = (v, weight)
                return

    # -- basic accessors ---------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Number of nodes in the graph."""
        return self._num_nodes

    @property
    def num_edges(self) -> int:
        """Number of undirected edges in the graph."""
        return len(self._edge_weights)

    @property
    def adjacency(self) -> list[list[tuple[int, float]]]:
        """Raw adjacency structure: ``adjacency[u]`` is a list of (v, weight).

        Exposed read-only by convention; the shortest-path algorithms iterate
        it directly for speed.  Callers must not mutate it.
        """
        return self._adjacency

    def nodes(self) -> range:
        """Return the node identifiers as a ``range`` object."""
        return range(self._num_nodes)

    def edges(self) -> Iterator[tuple[int, int, float]]:
        """Yield each undirected edge once as ``(u, v, weight)`` with u < v."""
        for (u, v), weight in self._edge_weights.items():
            yield u, v, weight

    def neighbors(self, node: int) -> list[int]:
        """Return the neighbors of ``node`` (in insertion order)."""
        self._check_node(node)
        return [v for v, _ in self._adjacency[node]]

    def neighbor_weights(self, node: int) -> list[tuple[int, float]]:
        """Return ``(neighbor, weight)`` pairs for ``node``."""
        self._check_node(node)
        return list(self._adjacency[node])

    def degree(self, node: int) -> int:
        """Return the degree of ``node``."""
        self._check_node(node)
        return len(self._adjacency[node])

    def has_edge(self, u: int, v: int) -> bool:
        """Return True if the undirected edge ``{u, v}`` exists."""
        key = (u, v) if u < v else (v, u)
        return key in self._edge_weights

    def edge_weight(self, u: int, v: int) -> float:
        """Return the weight of edge ``{u, v}``; raises ``KeyError`` if absent."""
        key = (u, v) if u < v else (v, u)
        return self._edge_weights[key]

    def get_edge_weight(
        self, u: int, v: int, default: float | None = None
    ) -> float | None:
        """Return the weight of edge ``{u, v}``, or ``default`` if absent.

        Single dict lookup; the hot-path alternative to calling
        :meth:`has_edge` followed by :meth:`edge_weight`.
        """
        return self._edge_weights.get((u, v) if u < v else (v, u), default)

    def total_weight(self) -> float:
        """Return the sum of all edge weights."""
        return sum(self._edge_weights.values())

    def average_degree(self) -> float:
        """Return the mean node degree (0.0 for an empty graph)."""
        if self._num_nodes == 0:
            return 0.0
        return 2.0 * self.num_edges / self._num_nodes

    def max_degree(self) -> int:
        """Return the maximum node degree (0 for an empty graph)."""
        if self._num_nodes == 0:
            return 0
        return max(len(row) for row in self._adjacency)

    def degree_sequence(self) -> list[int]:
        """Return the list of node degrees indexed by node id."""
        return [len(row) for row in self._adjacency]

    # -- connectivity ------------------------------------------------------

    def connected_components(self) -> list[list[int]]:
        """Return the connected components as lists of node ids."""
        seen = [False] * self._num_nodes
        components: list[list[int]] = []
        for start in range(self._num_nodes):
            if seen[start]:
                continue
            stack = [start]
            seen[start] = True
            component = []
            while stack:
                node = stack.pop()
                component.append(node)
                for neighbor, _ in self._adjacency[node]:
                    if not seen[neighbor]:
                        seen[neighbor] = True
                        stack.append(neighbor)
            components.append(component)
        return components

    def is_connected(self) -> bool:
        """Return True if the graph has at most one connected component."""
        if self._num_nodes <= 1:
            return True
        components = self.connected_components()
        return len(components) == 1

    def largest_component_subgraph(self) -> tuple["Topology", dict[int, int]]:
        """Return the largest connected component as a new, relabelled Topology.

        Returns
        -------
        (topology, mapping)
            ``topology`` has nodes ``0 .. k-1``; ``mapping`` maps old node ids
            to new ones.
        """
        components = self.connected_components()
        if not components:
            return Topology(0, name=self.name), {}
        largest = max(components, key=len)
        mapping = {old: new for new, old in enumerate(sorted(largest))}
        sub = Topology(len(largest), name=self.name)
        # Direct O(E) construction: every surviving edge is already validated
        # and deduplicated in this topology, so replaying add_edge per edge
        # (validation + duplicate collapse) would only add overhead.  The
        # mapping is monotone, so key ordering is preserved.
        sub_weights = sub._edge_weights
        sub_adjacency = sub._adjacency
        for (u, v), weight in self._edge_weights.items():
            new_u = mapping.get(u)
            if new_u is None:
                continue
            new_v = mapping.get(v)
            if new_v is None:
                continue
            sub_weights[(new_u, new_v)] = weight
            sub_adjacency[new_u].append((new_v, weight))
            sub_adjacency[new_v].append((new_u, weight))
        return sub, mapping

    # -- conversions -------------------------------------------------------

    def to_networkx(self):  # pragma: no cover - thin convenience wrapper
        """Return an equivalent ``networkx.Graph`` (weights on ``"weight"``)."""
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(range(self._num_nodes))
        for u, v, weight in self.edges():
            graph.add_edge(u, v, weight=weight)
        return graph

    @classmethod
    def from_edges(
        cls,
        num_nodes: int,
        edges: Iterable[tuple[int, int] | tuple[int, int, float]],
        *,
        name: str = "topology",
    ) -> "Topology":
        """Build a topology from an edge iterable."""
        topology = cls(num_nodes, name=name)
        topology.add_edges_from(edges)
        return topology

    def copy(self) -> "Topology":
        """Return a deep copy of this topology.

        O(E): adjacency rows and the edge-weight table are copied directly
        (they are already validated and deduplicated), instead of replaying
        ``add_edge`` per edge.
        """
        duplicate = Topology(self._num_nodes, name=self.name)
        duplicate._adjacency = [list(row) for row in self._adjacency]
        duplicate._edge_weights = dict(self._edge_weights)
        return duplicate

    # -- CSR kernel cache --------------------------------------------------

    def csr(self) -> "CSRGraph":
        """Return the cached CSR kernel snapshot of this topology.

        Built lazily on first use and invalidated whenever the topology
        mutates (``add_edge``), so callers can hold a ``Topology`` and always
        see a kernel consistent with the current edges.
        """
        if self._csr is None:
            from repro.graphs.csr import CSRGraph

            self._csr = CSRGraph.from_topology(self)
        return self._csr

    def weight_profile(self) -> "WeightProfile":
        """Return the cached :class:`~repro.graphs.csr.WeightProfile`.

        Profiled lazily from the edge weights and cached alongside the CSR
        snapshot (both are invalidated whenever ``add_edge`` mutates the
        graph).  The CSR kernels use it to pick the search kernel: unit
        weights take the BFS/bucket fast paths, power-of-two-quantized
        weights take the Dial bucket queue, everything else the heap.
        """
        if self._weight_profile is None:
            from repro.graphs.csr import profile_weights

            self._weight_profile = profile_weights(
                self._edge_weights.values()
            )
        return self._weight_profile

    def content_key(self) -> str:
        """Return a content-addressed key for this topology's edge set.

        A SHA-256 hex digest over the node count and every undirected edge
        ``(u, v, weight)`` in sorted order, with weights hashed by their
        exact IEEE-754 bit pattern.  Two topologies have the same key iff
        they compare ``==`` (same nodes and weighted edges, regardless of
        insertion order or ``name``).  Cached alongside the CSR snapshot and
        invalidated on any mutation; the scenario engine's artifact cache
        uses it to key converged routing substrates on disk.
        """
        if self._content_key is None:
            import hashlib
            import struct

            digest = hashlib.sha256()
            digest.update(b"topology/v1")
            digest.update(struct.pack("<q", self._num_nodes))
            for (u, v) in sorted(self._edge_weights):
                digest.update(
                    struct.pack("<qqd", u, v, self._edge_weights[(u, v)])
                )
            self._content_key = digest.hexdigest()
        return self._content_key

    # -- pickling ----------------------------------------------------------
    # The CSR snapshot (arrays + scratch arena) is cheap to rebuild and
    # dropped from the pickle so multiprocessing fan-outs ship only the
    # adjacency structure to worker processes.

    def __getstate__(self) -> dict:
        return {
            "_num_nodes": self._num_nodes,
            "_adjacency": self._adjacency,
            "_edge_weights": self._edge_weights,
            "name": self.name,
        }

    def __setstate__(self, state: dict) -> None:
        self._num_nodes = state["_num_nodes"]
        self._adjacency = state["_adjacency"]
        self._edge_weights = state["_edge_weights"]
        self.name = state["name"]
        self._csr = None
        self._weight_profile = None
        self._content_key = None

    # -- dunder ------------------------------------------------------------

    def __repr__(self) -> str:
        return (
            f"Topology(name={self.name!r}, nodes={self._num_nodes}, "
            f"edges={self.num_edges})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Topology):
            return NotImplemented
        return (
            self._num_nodes == other._num_nodes
            and self._edge_weights == other._edge_weights
        )

    def __hash__(self) -> int:  # Topologies are mutable; identity hash.
        return id(self)

    # -- internals ---------------------------------------------------------

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self._num_nodes:
            raise ValueError(
                f"node {node} out of range for topology with "
                f"{self._num_nodes} nodes"
            )


def _as_typed_array(typecode: str, slab) -> array:
    """Copy ``slab`` (array or typed memoryview) into a fresh ``array``."""
    if isinstance(slab, array) and slab.typecode == typecode:
        return array(typecode, slab)
    result = array(typecode)
    view = memoryview(slab)
    if view.nbytes:
        result.frombytes(view.cast("B"))
    return result


def _mmap_topology_slab(path: str, typecode: str, count: int):
    """Writable private (copy-on-write) typed view over one slab file.

    Unlike the substrate tables' read-only attach, the CSR kernel arena
    takes ``ctypes`` pointers into the graph slabs via ``from_buffer``,
    which requires a writable buffer.  ``ACCESS_COPY`` satisfies that
    while staying zero-copy in practice: the kernels never write the
    graph slabs, so no page is ever privatized and reads come straight
    from the shared page cache.
    """
    import mmap as _mmap
    import os

    if count == 0:
        return array(typecode)
    expected = 8 * count
    size = os.path.getsize(path)
    if size != expected:
        raise ValueError(
            f"slab file {path} holds {size} bytes, manifest expects {expected}"
        )
    with open(path, "rb") as handle:
        mapped = _mmap.mmap(handle.fileno(), expected, access=_mmap.ACCESS_COPY)
    # The cast memoryview keeps the mapping alive via the buffer protocol;
    # dropping the last view unmaps it.
    return memoryview(mapped).cast(typecode)


class CSRTopology(Topology):
    """An immutable, array-backed :class:`Topology`.

    The edge set lives in six flat slabs:

    * ``offsets`` / ``neighbors`` / ``weights`` -- the CSR arc slabs, laid
      out exactly as :meth:`CSRGraph.from_topology` would build them from
      the equivalent dict topology (arc order == edge arrival order), so
      :meth:`csr` wraps them zero-copy;
    * ``edges_u`` / ``edges_v`` / ``edges_w`` -- the deduplicated canonical
      edges ``(u < v)`` in arrival order, mirroring the dict path's
      ``_edge_weights`` insertion order.

    All ``Topology`` read APIs answer straight off the slabs.  The parent's
    dict/list structures (``_adjacency`` / ``_edge_weights``) are exposed as
    lazily materializing properties so inherited code paths -- equality,
    the dict-based reference engines -- keep working bit-identically; the
    materialized copies are cached but never consulted by the overrides.
    Mutation raises ``TypeError`` (convert with :meth:`to_dict_topology`
    first); ``copy()`` therefore shares the slabs.

    Instances are built by :mod:`repro.graphs.ingest` (streaming parse),
    :meth:`from_edge_arrays`, or :meth:`from_slab_dir` (mmap attach of a
    :data:`TOPOLOGY_SLAB_SCHEMA` directory).
    """

    __slots__ = (
        "_offsets",
        "_nbrs",
        "_wts",
        "_eu",
        "_ev",
        "_ew",
        "_adj_cache",
        "_ew_cache",
    )

    def __init__(
        self,
        num_nodes: int,
        offsets,
        neighbors,
        weights,
        edges_u,
        edges_v,
        edges_w,
        *,
        name: str = "topology",
        profile: "WeightProfile | None" = None,
    ) -> None:
        if num_nodes < 0:
            raise ValueError(f"num_nodes must be >= 0, got {num_nodes}")
        self._num_nodes = int(num_nodes)
        self._offsets = offsets
        self._nbrs = neighbors
        self._wts = weights
        self._eu = edges_u
        self._ev = edges_v
        self._ew = edges_w
        self._adj_cache = None
        self._ew_cache = None
        self._csr = None
        self._weight_profile = profile
        self._content_key = None
        self.name = name

    @classmethod
    def from_edge_arrays(
        cls,
        num_nodes: int,
        edges_u,
        edges_v,
        edges_w,
        *,
        name: str = "topology",
        profile: "WeightProfile | None" = None,
    ) -> "CSRTopology":
        """Build from deduplicated canonical edge arrays (``u < v``).

        The arrays must already be validated (no self-loops, ids in range,
        positive weights, no duplicate pairs); the CSR arc slabs are
        assembled in one counting pass (C-accelerated when available).
        """
        from repro.graphs.ingest import assemble_csr_slabs

        offsets, neighbors, weights = assemble_csr_slabs(
            num_nodes, edges_u, edges_v, edges_w
        )
        return cls(
            num_nodes,
            offsets,
            neighbors,
            weights,
            edges_u,
            edges_v,
            edges_w,
            name=name,
            profile=profile,
        )

    # -- lazily materialized dict-backend views ---------------------------
    # These properties shadow the parent's slot descriptors: inherited
    # methods that read self._adjacency / self._edge_weights see dict
    # structures materialized on first touch, in the exact order the dict
    # construction path would have produced.

    @property
    def _adjacency(self) -> list[list[tuple[int, float]]]:
        adjacency = self._adj_cache
        if adjacency is None:
            offsets, neighbors, weights = self._offsets, self._nbrs, self._wts
            adjacency = [
                [
                    (neighbors[arc], weights[arc])
                    for arc in range(offsets[node], offsets[node + 1])
                ]
                for node in range(self._num_nodes)
            ]
            self._adj_cache = adjacency
        return adjacency

    @property
    def _edge_weights(self) -> dict[tuple[int, int], float]:
        edge_weights = self._ew_cache
        if edge_weights is None:
            eu, ev, ew = self._eu, self._ev, self._ew
            edge_weights = {
                (eu[j], ev[j]): ew[j] for j in range(len(ew))
            }
            self._ew_cache = edge_weights
        return edge_weights

    # -- immutability ------------------------------------------------------

    def _immutable(self) -> "TypeError":
        return TypeError(
            "CSRTopology is immutable; use to_dict_topology() for a "
            "mutable dict-backed copy"
        )

    def add_edge(self, u: int, v: int, weight: float = 1.0) -> None:
        raise self._immutable()

    def remove_edge(self, u: int, v: int) -> float:
        raise self._immutable()

    def set_edge_weight(self, u: int, v: int, weight: float) -> float:
        raise self._immutable()

    # -- slab-direct read API ---------------------------------------------

    @property
    def num_edges(self) -> int:
        return len(self._ew)

    def edges(self) -> Iterator[tuple[int, int, float]]:
        eu, ev, ew = self._eu, self._ev, self._ew
        for j in range(len(ew)):
            yield eu[j], ev[j], ew[j]

    def neighbors(self, node: int) -> list[int]:
        self._check_node(node)
        neighbors = self._nbrs
        return [
            neighbors[arc]
            for arc in range(self._offsets[node], self._offsets[node + 1])
        ]

    def neighbor_weights(self, node: int) -> list[tuple[int, float]]:
        self._check_node(node)
        neighbors, weights = self._nbrs, self._wts
        return [
            (neighbors[arc], weights[arc])
            for arc in range(self._offsets[node], self._offsets[node + 1])
        ]

    def degree(self, node: int) -> int:
        self._check_node(node)
        return self._offsets[node + 1] - self._offsets[node]

    def has_edge(self, u: int, v: int) -> bool:
        return self.get_edge_weight(u, v) is not None

    def edge_weight(self, u: int, v: int) -> float:
        weight = self.get_edge_weight(u, v)
        if weight is None:
            raise KeyError((u, v) if u < v else (v, u))
        return weight

    def get_edge_weight(
        self, u: int, v: int, default: float | None = None
    ) -> float | None:
        if not 0 <= u < self._num_nodes or not 0 <= v < self._num_nodes:
            return default
        neighbors, weights = self._nbrs, self._wts
        for arc in range(self._offsets[u], self._offsets[u + 1]):
            if neighbors[arc] == v:
                return weights[arc]
        return default

    def total_weight(self) -> float:
        return sum(self._ew)

    def max_degree(self) -> int:
        offsets = self._offsets
        if self._num_nodes == 0:
            return 0
        return max(
            offsets[node + 1] - offsets[node]
            for node in range(self._num_nodes)
        )

    def degree_sequence(self) -> list[int]:
        offsets = self._offsets
        return [
            offsets[node + 1] - offsets[node]
            for node in range(self._num_nodes)
        ]

    def connected_components(self) -> list[list[int]]:
        # Same DFS as the parent, reading the arc slabs directly; arc order
        # equals adjacency insertion order, so the traversal (and therefore
        # the component/member ordering) is bit-identical to the dict path.
        offsets, neighbors = self._offsets, self._nbrs
        seen = bytearray(self._num_nodes)
        components: list[list[int]] = []
        for start in range(self._num_nodes):
            if seen[start]:
                continue
            stack = [start]
            seen[start] = 1
            component: list[int] = []
            while stack:
                node = stack.pop()
                component.append(node)
                for arc in range(offsets[node], offsets[node + 1]):
                    neighbor = neighbors[arc]
                    if not seen[neighbor]:
                        seen[neighbor] = 1
                        stack.append(neighbor)
            components.append(component)
        return components

    def largest_component_subgraph(
        self,
    ) -> tuple["CSRTopology", dict[int, int]]:
        components = self.connected_components()
        if not components:
            return (
                CSRTopology.from_edge_arrays(
                    0, array("q"), array("q"), array("d"), name=self.name
                ),
                {},
            )
        largest = max(components, key=len)
        if len(largest) == self._num_nodes:
            return self.copy(), {node: node for node in range(self._num_nodes)}
        largest.sort()
        remap = array("q", [-1]) * self._num_nodes
        for new, old in enumerate(largest):
            remap[old] = new
        eu, ev, ew = self._eu, self._ev, self._ew
        sub_u, sub_v, sub_w = array("q"), array("q"), array("d")
        for j in range(len(ew)):
            new_u = remap[eu[j]]
            if new_u < 0:
                continue
            new_v = remap[ev[j]]
            if new_v < 0:
                continue
            # The mapping is monotone, so new_u < new_v stays canonical
            # and arrival order is preserved.
            sub_u.append(new_u)
            sub_v.append(new_v)
            sub_w.append(ew[j])
        sub = CSRTopology.from_edge_arrays(
            len(largest), sub_u, sub_v, sub_w, name=self.name
        )
        return sub, {old: new for new, old in enumerate(largest)}

    # -- conversions -------------------------------------------------------

    def to_dict_topology(self) -> Topology:
        """Return the equivalent mutable dict-backed :class:`Topology`.

        O(E) direct construction; adjacency rows and the edge-weight table
        come out in the same order the dict construction path would have
        produced, so the result is indistinguishable from one built by
        replaying ``add_edge`` over :meth:`edges`.
        """
        duplicate = Topology(self._num_nodes, name=self.name)
        offsets, neighbors, weights = self._offsets, self._nbrs, self._wts
        duplicate._adjacency = [
            [
                (neighbors[arc], weights[arc])
                for arc in range(offsets[node], offsets[node + 1])
            ]
            for node in range(self._num_nodes)
        ]
        eu, ev, ew = self._eu, self._ev, self._ew
        duplicate._edge_weights = {
            (eu[j], ev[j]): ew[j] for j in range(len(ew))
        }
        return duplicate

    def copy(self) -> "CSRTopology":
        """Return a copy sharing the (immutable) slabs."""
        duplicate = CSRTopology(
            self._num_nodes,
            self._offsets,
            self._nbrs,
            self._wts,
            self._eu,
            self._ev,
            self._ew,
            name=self.name,
            profile=self._weight_profile,
        )
        duplicate._content_key = self._content_key
        return duplicate

    # -- derived snapshots -------------------------------------------------

    def csr(self) -> "CSRGraph":
        if self._csr is None:
            from repro.graphs.csr import CSRGraph

            self._csr = CSRGraph(
                self._num_nodes,
                self._offsets,
                self._nbrs,
                self._wts,
                profile=self.weight_profile(),
            )
        return self._csr

    def weight_profile(self) -> "WeightProfile":
        if self._weight_profile is None:
            from repro.graphs.csr import profile_weights

            self._weight_profile = profile_weights(self._ew)
        return self._weight_profile

    def content_key(self) -> str:
        if self._content_key is None:
            import hashlib
            import struct

            eu, ev, ew = self._eu, self._ev, self._ew
            digest = hashlib.sha256()
            digest.update(b"topology/v1")
            digest.update(struct.pack("<q", self._num_nodes))
            record = struct.Struct("<qqd")
            if self._edges_sorted():
                # Ingested topologies keep their edge slabs in (u, v)
                # order already: hash the records in one C-level pass
                # (identical byte stream to the sorted-index loop below).
                digest.update(b"".join(map(record.pack, eu, ev, ew)))
            else:
                pack = record.pack
                for j in sorted(
                    range(len(ew)), key=lambda idx: (eu[idx], ev[idx])
                ):
                    digest.update(pack(eu[j], ev[j], ew[j]))
            self._content_key = digest.hexdigest()
        return self._content_key

    def _edges_sorted(self) -> bool:
        """True when the edge slabs are already in (u, v) order."""
        eu, ev = self._eu, self._ev
        previous_u, previous_v = -1, -1
        for j in range(len(eu)):
            u, v = eu[j], ev[j]
            if u < previous_u or (u == previous_u and v <= previous_v):
                return False
            previous_u, previous_v = u, v
        return True

    # -- raw slab persistence (mmap-attachable artifact format) -----------

    def slab_items(self) -> tuple[tuple[str, str, object], ...]:
        """``(name, typecode, slab)`` triples in manifest order."""
        return (
            ("offsets", "q", self._offsets),
            ("neighbors", "q", self._nbrs),
            ("weights", "d", self._wts),
            ("edges_u", "q", self._eu),
            ("edges_v", "q", self._ev),
            ("edges_w", "d", self._ew),
        )

    def slab_bytes(self) -> int:
        """Total raw slab payload in bytes (every item is 8 bytes)."""
        return sum(8 * len(slab) for _, _, slab in self.slab_items())

    def save_slabs(self, path) -> str:
        """Write as a raw slab directory (see :data:`TOPOLOGY_SLAB_SCHEMA`).

        The directory is mmap-attachable with :meth:`from_slab_dir` -- the
        format the artifact cache stores big ingested topologies in.
        Returns the directory path.
        """
        import json
        import os

        path = os.fspath(path)
        os.makedirs(path, exist_ok=True)
        slabs = self.slab_items()
        for name, _typecode, slab in slabs:
            target = os.path.join(path, f"{name}.bin")
            scratch = target + ".tmp"
            with open(scratch, "wb") as handle:
                handle.write(memoryview(slab))
            os.replace(scratch, target)
        manifest = {
            "schema": TOPOLOGY_SLAB_SCHEMA,
            "num_nodes": self._num_nodes,
            "name": self.name,
            "content_key": self.content_key(),
            "slots": [
                [name, typecode, len(slab)] for name, typecode, slab in slabs
            ],
        }
        manifest_path = os.path.join(path, "manifest.json")
        scratch = manifest_path + ".tmp"
        with open(scratch, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=1)
        os.replace(scratch, manifest_path)
        return path

    @classmethod
    def from_slab_dir(cls, path) -> "CSRTopology":
        """Attach to a raw slab directory written by :meth:`save_slabs`.

        Every slab becomes a typed ``memoryview`` over a private
        copy-on-write file mapping, so repeated attaches share the OS page
        cache instead of materializing private copies.
        """
        import json
        import os

        path = os.fspath(path)
        with open(os.path.join(path, "manifest.json"), encoding="utf-8") as f:
            manifest = json.load(f)
        if manifest.get("schema") != TOPOLOGY_SLAB_SCHEMA:
            raise ValueError(
                f"unsupported slab schema {manifest.get('schema')!r} in "
                f"{path} (expected {TOPOLOGY_SLAB_SCHEMA})"
            )
        views: dict[str, object] = {}
        for name, typecode, count in manifest["slots"]:
            views[name] = _mmap_topology_slab(
                os.path.join(path, f"{name}.bin"), typecode, count
            )
        attached = cls(
            manifest["num_nodes"],
            views["offsets"],
            views["neighbors"],
            views["weights"],
            views["edges_u"],
            views["edges_v"],
            views["edges_w"],
            name=manifest.get("name", "topology"),
        )
        attached._content_key = manifest.get("content_key")
        return attached

    # -- pickling ----------------------------------------------------------
    # Memoryview slabs (mmap attaches) are not picklable; copy every slab
    # into a plain array for transport.  Derived snapshots rebuild lazily.

    def __getstate__(self) -> dict:
        return {
            "num_nodes": self._num_nodes,
            "name": self.name,
            "offsets": _as_typed_array("q", self._offsets),
            "neighbors": _as_typed_array("q", self._nbrs),
            "weights": _as_typed_array("d", self._wts),
            "edges_u": _as_typed_array("q", self._eu),
            "edges_v": _as_typed_array("q", self._ev),
            "edges_w": _as_typed_array("d", self._ew),
            "content_key": self._content_key,
        }

    def __setstate__(self, state: dict) -> None:
        CSRTopology.__init__(
            self,
            state["num_nodes"],
            state["offsets"],
            state["neighbors"],
            state["weights"],
            state["edges_u"],
            state["edges_v"],
            state["edges_w"],
            name=state["name"],
        )
        self._content_key = state.get("content_key")

    def __repr__(self) -> str:
        return (
            f"CSRTopology(name={self.name!r}, nodes={self._num_nodes}, "
            f"edges={self.num_edges})"
        )
