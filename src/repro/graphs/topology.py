"""The :class:`Topology` class: an undirected, weighted network graph.

The paper's protocols operate on "an undirected connected network of n nodes
with arbitrary structure and link distances (i.e., link latencies or costs)"
(§4.1).  ``Topology`` models exactly that: nodes are consecutive integers
``0 .. n-1``, edges carry a positive float weight, and the adjacency structure
is stored as per-node lists of ``(neighbor, weight)`` pairs for fast iteration
inside the Dijkstra variants.
"""

from __future__ import annotations

from array import array
from typing import TYPE_CHECKING, Callable, Iterable, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graphs.csr import CSRGraph, WeightProfile

__all__ = ["Topology"]


class Topology:
    """An undirected weighted graph over nodes ``0 .. n-1``.

    Parameters
    ----------
    num_nodes:
        Number of nodes.  Nodes are implicitly the integers ``0 .. n-1``.
    name:
        Optional human-readable label (e.g. ``"gnm-1024"``) used in reports.

    Notes
    -----
    * Self-loops are rejected; parallel edges collapse to the smaller weight.
    * Edge weights must be strictly positive (they are link latencies/costs).
    * The class is mutable during construction (``add_edge``), and all reads
      are O(1)/O(degree); the shortest-path algorithms in
      :mod:`repro.graphs.shortest_paths` read ``topology.adjacency`` directly.
    """

    __slots__ = (
        "_num_nodes",
        "_adjacency",
        "_edge_weights",
        "_csr",
        "_weight_profile",
        "_content_key",
        "name",
    )

    def __init__(self, num_nodes: int, *, name: str = "topology") -> None:
        if num_nodes < 0:
            raise ValueError(f"num_nodes must be >= 0, got {num_nodes}")
        self._num_nodes = int(num_nodes)
        self._adjacency: list[list[tuple[int, float]]] = [
            [] for _ in range(self._num_nodes)
        ]
        self._edge_weights: dict[tuple[int, int], float] = {}
        self._csr: "CSRGraph | None" = None
        self._weight_profile: "WeightProfile | None" = None
        self._content_key: str | None = None
        self.name = name

    # -- construction -----------------------------------------------------

    def add_edge(self, u: int, v: int, weight: float = 1.0) -> None:
        """Add the undirected edge ``{u, v}`` with the given positive weight.

        Adding an existing edge keeps the smaller of the old and new weights.
        """
        self._check_node(u)
        self._check_node(v)
        if u == v:
            raise ValueError(f"self-loops are not allowed (node {u})")
        if weight <= 0:
            raise ValueError(f"edge weight must be > 0, got {weight}")
        key = (u, v) if u < v else (v, u)
        existing = self._edge_weights.get(key)
        if existing is not None:
            if weight < existing:
                self._edge_weights[key] = float(weight)
                self._replace_adjacency_weight(u, v, float(weight))
                self._replace_adjacency_weight(v, u, float(weight))
                self._refresh_caches(
                    lambda csr: csr.with_weight(u, v, weight)
                )
            return
        self._edge_weights[key] = float(weight)
        self._adjacency[u].append((v, float(weight)))
        self._adjacency[v].append((u, float(weight)))
        self._refresh_caches(lambda csr: csr.with_edge(u, v, weight))

    def _invalidate_caches(self) -> None:
        """Drop every derived snapshot after a mutation.

        The CSR kernel snapshot, the weight profile, and the content key are
        all pure functions of the edge set; they are invalidated together so
        no caller (including a shared-memory publisher) can observe a stale
        view of a mutated topology.
        """
        self._csr = None
        self._weight_profile = None
        self._content_key = None

    def _refresh_caches(
        self, patch: "Callable[[CSRGraph], CSRGraph]"
    ) -> None:
        """Advance the derived snapshots across a single-edge mutation.

        The content key is always dropped (recomputed on demand).  When a
        CSR snapshot is live and array-backed, it is *patched* into a fresh
        snapshot via C-level slab splicing instead of being rebuilt from
        scratch on the next :meth:`csr` call -- the discrete-event churn
        engine mutates one edge per event, and the O(E) per-arc rebuild
        (plus the O(E) weight rescan) would otherwise dominate its
        per-event budget.  With no live snapshot (the common construction
        path) this is exactly :meth:`_invalidate_caches`.
        """
        self._content_key = None
        csr = self._csr
        self._csr = None
        self._weight_profile = None
        if csr is not None and isinstance(csr.offsets, array):
            patched = patch(csr)
            self._csr = patched
            self._weight_profile = patched.profile

    def remove_edge(self, u: int, v: int) -> float:
        """Remove the undirected edge ``{u, v}``; return its weight.

        The inverse of :meth:`add_edge`, used by the dynamics engine to
        apply link-failure events in place.  Removing then re-adding an
        edge yields a topology that compares ``==`` (and shares a
        ``content_key``) with the original: equality is defined over the
        edge-weight table, not adjacency insertion order, and every
        derived snapshot (CSR, weight profile, content key) is
        invalidated by the mutation.

        Raises
        ------
        KeyError
            If the edge does not exist.
        """
        self._check_node(u)
        self._check_node(v)
        key = (u, v) if u < v else (v, u)
        weight = self._edge_weights.pop(key)  # KeyError if absent
        self._adjacency[u] = [
            pair for pair in self._adjacency[u] if pair[0] != v
        ]
        self._adjacency[v] = [
            pair for pair in self._adjacency[v] if pair[0] != u
        ]
        self._refresh_caches(lambda csr: csr.without_edge(u, v))
        return weight

    def set_edge_weight(self, u: int, v: int, weight: float) -> float:
        """Set the weight of the existing edge ``{u, v}``; return the old one.

        Unlike :meth:`add_edge` (which only ever *lowers* the stored weight
        of a duplicate edge), this models a link-cost change event and may
        raise or lower the weight.

        Raises
        ------
        KeyError
            If the edge does not exist.
        ValueError
            If the weight is not strictly positive.
        """
        self._check_node(u)
        self._check_node(v)
        if weight <= 0:
            raise ValueError(f"edge weight must be > 0, got {weight}")
        key = (u, v) if u < v else (v, u)
        old = self._edge_weights[key]  # KeyError if absent
        if float(weight) == old:
            return old
        self._edge_weights[key] = float(weight)
        self._replace_adjacency_weight(u, v, float(weight))
        self._replace_adjacency_weight(v, u, float(weight))
        self._refresh_caches(lambda csr: csr.with_weight(u, v, weight))
        return old

    def add_edges_from(
        self, edges: Iterable[tuple[int, int] | tuple[int, int, float]]
    ) -> None:
        """Add many edges; each item is ``(u, v)`` or ``(u, v, weight)``."""
        for edge in edges:
            if len(edge) == 2:
                u, v = edge  # type: ignore[misc]
                self.add_edge(u, v)
            else:
                u, v, w = edge  # type: ignore[misc]
                self.add_edge(u, v, w)

    def _replace_adjacency_weight(self, u: int, v: int, weight: float) -> None:
        row = self._adjacency[u]
        for index, (neighbor, _) in enumerate(row):
            if neighbor == v:
                row[index] = (v, weight)
                return

    # -- basic accessors ---------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Number of nodes in the graph."""
        return self._num_nodes

    @property
    def num_edges(self) -> int:
        """Number of undirected edges in the graph."""
        return len(self._edge_weights)

    @property
    def adjacency(self) -> list[list[tuple[int, float]]]:
        """Raw adjacency structure: ``adjacency[u]`` is a list of (v, weight).

        Exposed read-only by convention; the shortest-path algorithms iterate
        it directly for speed.  Callers must not mutate it.
        """
        return self._adjacency

    def nodes(self) -> range:
        """Return the node identifiers as a ``range`` object."""
        return range(self._num_nodes)

    def edges(self) -> Iterator[tuple[int, int, float]]:
        """Yield each undirected edge once as ``(u, v, weight)`` with u < v."""
        for (u, v), weight in self._edge_weights.items():
            yield u, v, weight

    def neighbors(self, node: int) -> list[int]:
        """Return the neighbors of ``node`` (in insertion order)."""
        self._check_node(node)
        return [v for v, _ in self._adjacency[node]]

    def neighbor_weights(self, node: int) -> list[tuple[int, float]]:
        """Return ``(neighbor, weight)`` pairs for ``node``."""
        self._check_node(node)
        return list(self._adjacency[node])

    def degree(self, node: int) -> int:
        """Return the degree of ``node``."""
        self._check_node(node)
        return len(self._adjacency[node])

    def has_edge(self, u: int, v: int) -> bool:
        """Return True if the undirected edge ``{u, v}`` exists."""
        key = (u, v) if u < v else (v, u)
        return key in self._edge_weights

    def edge_weight(self, u: int, v: int) -> float:
        """Return the weight of edge ``{u, v}``; raises ``KeyError`` if absent."""
        key = (u, v) if u < v else (v, u)
        return self._edge_weights[key]

    def get_edge_weight(
        self, u: int, v: int, default: float | None = None
    ) -> float | None:
        """Return the weight of edge ``{u, v}``, or ``default`` if absent.

        Single dict lookup; the hot-path alternative to calling
        :meth:`has_edge` followed by :meth:`edge_weight`.
        """
        return self._edge_weights.get((u, v) if u < v else (v, u), default)

    def total_weight(self) -> float:
        """Return the sum of all edge weights."""
        return sum(self._edge_weights.values())

    def average_degree(self) -> float:
        """Return the mean node degree (0.0 for an empty graph)."""
        if self._num_nodes == 0:
            return 0.0
        return 2.0 * self.num_edges / self._num_nodes

    def max_degree(self) -> int:
        """Return the maximum node degree (0 for an empty graph)."""
        if self._num_nodes == 0:
            return 0
        return max(len(row) for row in self._adjacency)

    def degree_sequence(self) -> list[int]:
        """Return the list of node degrees indexed by node id."""
        return [len(row) for row in self._adjacency]

    # -- connectivity ------------------------------------------------------

    def connected_components(self) -> list[list[int]]:
        """Return the connected components as lists of node ids."""
        seen = [False] * self._num_nodes
        components: list[list[int]] = []
        for start in range(self._num_nodes):
            if seen[start]:
                continue
            stack = [start]
            seen[start] = True
            component = []
            while stack:
                node = stack.pop()
                component.append(node)
                for neighbor, _ in self._adjacency[node]:
                    if not seen[neighbor]:
                        seen[neighbor] = True
                        stack.append(neighbor)
            components.append(component)
        return components

    def is_connected(self) -> bool:
        """Return True if the graph has at most one connected component."""
        if self._num_nodes <= 1:
            return True
        components = self.connected_components()
        return len(components) == 1

    def largest_component_subgraph(self) -> tuple["Topology", dict[int, int]]:
        """Return the largest connected component as a new, relabelled Topology.

        Returns
        -------
        (topology, mapping)
            ``topology`` has nodes ``0 .. k-1``; ``mapping`` maps old node ids
            to new ones.
        """
        components = self.connected_components()
        if not components:
            return Topology(0, name=self.name), {}
        largest = max(components, key=len)
        mapping = {old: new for new, old in enumerate(sorted(largest))}
        sub = Topology(len(largest), name=self.name)
        # Direct O(E) construction: every surviving edge is already validated
        # and deduplicated in this topology, so replaying add_edge per edge
        # (validation + duplicate collapse) would only add overhead.  The
        # mapping is monotone, so key ordering is preserved.
        sub_weights = sub._edge_weights
        sub_adjacency = sub._adjacency
        for (u, v), weight in self._edge_weights.items():
            new_u = mapping.get(u)
            if new_u is None:
                continue
            new_v = mapping.get(v)
            if new_v is None:
                continue
            sub_weights[(new_u, new_v)] = weight
            sub_adjacency[new_u].append((new_v, weight))
            sub_adjacency[new_v].append((new_u, weight))
        return sub, mapping

    # -- conversions -------------------------------------------------------

    def to_networkx(self):  # pragma: no cover - thin convenience wrapper
        """Return an equivalent ``networkx.Graph`` (weights on ``"weight"``)."""
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(range(self._num_nodes))
        for u, v, weight in self.edges():
            graph.add_edge(u, v, weight=weight)
        return graph

    @classmethod
    def from_edges(
        cls,
        num_nodes: int,
        edges: Iterable[tuple[int, int] | tuple[int, int, float]],
        *,
        name: str = "topology",
    ) -> "Topology":
        """Build a topology from an edge iterable."""
        topology = cls(num_nodes, name=name)
        topology.add_edges_from(edges)
        return topology

    def copy(self) -> "Topology":
        """Return a deep copy of this topology.

        O(E): adjacency rows and the edge-weight table are copied directly
        (they are already validated and deduplicated), instead of replaying
        ``add_edge`` per edge.
        """
        duplicate = Topology(self._num_nodes, name=self.name)
        duplicate._adjacency = [list(row) for row in self._adjacency]
        duplicate._edge_weights = dict(self._edge_weights)
        return duplicate

    # -- CSR kernel cache --------------------------------------------------

    def csr(self) -> "CSRGraph":
        """Return the cached CSR kernel snapshot of this topology.

        Built lazily on first use and invalidated whenever the topology
        mutates (``add_edge``), so callers can hold a ``Topology`` and always
        see a kernel consistent with the current edges.
        """
        if self._csr is None:
            from repro.graphs.csr import CSRGraph

            self._csr = CSRGraph.from_topology(self)
        return self._csr

    def weight_profile(self) -> "WeightProfile":
        """Return the cached :class:`~repro.graphs.csr.WeightProfile`.

        Profiled lazily from the edge weights and cached alongside the CSR
        snapshot (both are invalidated whenever ``add_edge`` mutates the
        graph).  The CSR kernels use it to pick the search kernel: unit
        weights take the BFS/bucket fast paths, power-of-two-quantized
        weights take the Dial bucket queue, everything else the heap.
        """
        if self._weight_profile is None:
            from repro.graphs.csr import profile_weights

            self._weight_profile = profile_weights(
                self._edge_weights.values()
            )
        return self._weight_profile

    def content_key(self) -> str:
        """Return a content-addressed key for this topology's edge set.

        A SHA-256 hex digest over the node count and every undirected edge
        ``(u, v, weight)`` in sorted order, with weights hashed by their
        exact IEEE-754 bit pattern.  Two topologies have the same key iff
        they compare ``==`` (same nodes and weighted edges, regardless of
        insertion order or ``name``).  Cached alongside the CSR snapshot and
        invalidated on any mutation; the scenario engine's artifact cache
        uses it to key converged routing substrates on disk.
        """
        if self._content_key is None:
            import hashlib
            import struct

            digest = hashlib.sha256()
            digest.update(b"topology/v1")
            digest.update(struct.pack("<q", self._num_nodes))
            for (u, v) in sorted(self._edge_weights):
                digest.update(
                    struct.pack("<qqd", u, v, self._edge_weights[(u, v)])
                )
            self._content_key = digest.hexdigest()
        return self._content_key

    # -- pickling ----------------------------------------------------------
    # The CSR snapshot (arrays + scratch arena) is cheap to rebuild and
    # dropped from the pickle so multiprocessing fan-outs ship only the
    # adjacency structure to worker processes.

    def __getstate__(self) -> dict:
        return {
            "_num_nodes": self._num_nodes,
            "_adjacency": self._adjacency,
            "_edge_weights": self._edge_weights,
            "name": self.name,
        }

    def __setstate__(self, state: dict) -> None:
        self._num_nodes = state["_num_nodes"]
        self._adjacency = state["_adjacency"]
        self._edge_weights = state["_edge_weights"]
        self.name = state["name"]
        self._csr = None
        self._weight_profile = None
        self._content_key = None

    # -- dunder ------------------------------------------------------------

    def __repr__(self) -> str:
        return (
            f"Topology(name={self.name!r}, nodes={self._num_nodes}, "
            f"edges={self.num_edges})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Topology):
            return NotImplemented
        return (
            self._num_nodes == other._num_nodes
            and self._edge_weights == other._edge_weights
        )

    def __hash__(self) -> int:  # Topologies are mutable; identity hash.
        return id(self)

    # -- internals ---------------------------------------------------------

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self._num_nodes:
            raise ValueError(
                f"node {node} out of range for topology with "
                f"{self._num_nodes} nodes"
            )
