"""Structural analysis helpers for topologies.

Used by the examples and the reporting layer to characterise generated
topologies (degree distribution, estimated diameter, path-length statistics)
so that readers can compare the synthetic Internet-like graphs against the
published properties of the CAIDA maps they substitute for.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphs.sampling import sample_nodes, sample_pairs
from repro.graphs.shortest_paths import all_pairs_sampled_distances, dijkstra
from repro.graphs.topology import Topology
from repro.utils.distributions import Summary, summarize

__all__ = ["TopologyProfile", "profile_topology", "estimate_diameter"]


@dataclass(frozen=True)
class TopologyProfile:
    """Summary of a topology's structure.

    Attributes
    ----------
    name, num_nodes, num_edges, average_degree, max_degree:
        Basic size/degree facts.
    degree_summary:
        Summary statistics of the degree sequence.
    path_length_summary:
        Summary of shortest-path distances over sampled pairs.
    estimated_diameter:
        Lower bound on the diameter from a double-sweep heuristic.
    """

    name: str
    num_nodes: int
    num_edges: int
    average_degree: float
    max_degree: int
    degree_summary: Summary
    path_length_summary: Summary
    estimated_diameter: float


def estimate_diameter(topology: Topology, *, sweeps: int = 4, seed: int = 0) -> float:
    """Estimate the (weighted) diameter with repeated double sweeps.

    Runs Dijkstra from a sampled node, jumps to the farthest node found, and
    repeats; the largest eccentricity seen is a lower bound that is usually
    tight on Internet-like graphs.
    """
    if topology.num_nodes == 0:
        return 0.0
    start_nodes = sample_nodes(topology, min(sweeps, topology.num_nodes), seed=seed)
    best = 0.0
    for start in start_nodes:
        distances, _ = dijkstra(topology, start)
        farthest = max(distances, key=distances.get)
        best = max(best, distances[farthest])
        distances, _ = dijkstra(topology, farthest)
        best = max(best, max(distances.values()))
    return best


def profile_topology(
    topology: Topology, *, pair_samples: int = 500, seed: int = 0
) -> TopologyProfile:
    """Return a :class:`TopologyProfile` for ``topology``.

    ``pair_samples`` source-destination pairs are sampled to estimate the
    path-length distribution; all other statistics are exact.
    """
    degrees = topology.degree_sequence()
    if topology.num_nodes >= 2:
        pairs = sample_pairs(topology, pair_samples, seed=seed)
        distances = all_pairs_sampled_distances(topology, pairs)
        path_summary = summarize(distances.values())
    else:
        path_summary = Summary(
            count=0, mean=0.0, minimum=0.0, maximum=0.0,
            median=0.0, p95=0.0, p99=0.0, stdev=0.0,
        )
    return TopologyProfile(
        name=topology.name,
        num_nodes=topology.num_nodes,
        num_edges=topology.num_edges,
        average_degree=topology.average_degree(),
        max_degree=topology.max_degree(),
        degree_summary=summarize(degrees) if degrees else Summary(
            count=0, mean=0.0, minimum=0.0, maximum=0.0,
            median=0.0, p95=0.0, p99=0.0, stdev=0.0,
        ),
        path_length_summary=path_summary,
        estimated_diameter=estimate_diameter(topology, seed=seed),
    )
