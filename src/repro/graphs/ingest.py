"""Streaming topology ingestion: text datasets to CSR slabs, dict-free.

The historical ingestion path (``read_edge_list``) materialized a dict
:class:`~repro.graphs.topology.Topology` -- one Python tuple per parsed
edge, two adjacency-list entries per edge, a tuple-keyed weight dict --
before the CSR kernels flattened it all again.  This module parses a
dataset in a single line-streaming pass straight into three flat typed
arrays (canonical ``u < v`` endpoints plus weight, 24 bytes per parsed
edge), collapses duplicates with a counting-sort pass, and scatters the
CSR arc slabs directly: peak RSS is bounded by the CSR payload, never by
Python edge objects or the text file.

Formats register through the :func:`topology_format` decorator (the
icarus/FNSS registered-factory idiom): the generic ``edge-list`` format,
a Rocketfuel-style ISP map parser, and a CAIDA AS-links-style parser ship
built in, each with its own node-id remapping, self-loop policy, and
per-dataset delay model.  :func:`ingest_file` returns an array-backed
:class:`~repro.graphs.topology.CSRTopology` (``backend="csr"``) or the
dict-backed oracle built by replaying the same parsed edges through
``add_edge`` (``backend="dict"``) -- the two are differential-tested to
be bit-identical.  :func:`ingest_topology` adds content-addressed
artifact caching keyed by file digest, format, and delay-model
parameters.

The duplicate policy matches ``Topology.add_edge`` exactly: the first
arrival of an edge keeps its position, with the minimum weight over all
arrivals.  The assembled arc slabs reproduce, arc for arc, what
``CSRGraph.from_topology`` would build from the equivalent dict topology,
which is what makes the fast path bit-identical to the oracle.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
from array import array
from typing import Callable, NamedTuple

from repro.graphs import _ckernels
from repro.graphs.topology import CSRTopology, Topology

__all__ = [
    "ParsedEdges",
    "available_formats",
    "assemble_csr_slabs",
    "dedup_edge_arrays",
    "file_digest",
    "ingest_file",
    "ingest_topology",
    "topology_format",
]

#: Rocketfuel-style default link delays (the icarus/FNSS convention):
#: intra-ISP links are fast, inter-ISP (external) links cross the wide
#: area.  Both are overridable per call.
ROCKETFUEL_INTERNAL_DELAY = 2.0
ROCKETFUEL_EXTERNAL_DELAY = 34.0


class ParsedEdges(NamedTuple):
    """The flat result of one streaming parse (pre-dedup)."""

    #: Node count declared by the dataset (header or id-remap table),
    #: or ``None`` to infer ``max_node + 1``.
    declared_nodes: int | None
    #: Name declared by the dataset, or ``None``.
    declared_name: str | None
    #: Largest node id referenced by any edge (-1 when there are none).
    max_node: int
    edges_u: array  # canonical lo endpoints ("q")
    edges_v: array  # canonical hi endpoints ("q")
    edges_w: array  # weights ("d")
    #: First constraint violation in arrival order, deferred so line-level
    #: parse errors and the range check keep their historical precedence:
    #: ``("self-loop", node)`` or ``("weight", value)``; ``None`` if clean.
    deferred: tuple | None
    #: True when every parsed weight is exactly 1.0 (profile fast path).
    all_unit: bool


class TopologyFormat(NamedTuple):
    name: str
    parse: Callable[..., ParsedEdges]
    description: str


_FORMATS: dict[str, TopologyFormat] = {}


def topology_format(name: str, *, description: str = ""):
    """Register a streaming parser under ``name`` (decorator).

    The decorated callable takes ``(path, **params)`` and returns a
    :class:`ParsedEdges`; ``params`` are the format's delay-model knobs
    and become part of the ingest artifact cache key.
    """

    def register(parse: Callable[..., ParsedEdges]):
        _FORMATS[name] = TopologyFormat(name, parse, description)
        return parse

    return register


def available_formats() -> list[str]:
    """Registered format names, sorted."""
    return sorted(_FORMATS)


# -- parsers ---------------------------------------------------------------


@topology_format(
    "edge-list",
    description="'u v [weight]' lines; '# nodes N' / '# name X' headers",
)
def parse_edge_list(path) -> ParsedEdges:
    """The repo's native format (see :mod:`repro.graphs.io`).

    Error semantics are the documented ``read_edge_list`` contract:
    malformed lines (wrong field count), non-numeric fields, and negative
    node ids raise immediately with the offending ``path:line``; ids
    exceeding a ``# nodes N`` header raise after the pass; self-loops and
    non-positive weights raise last (the dict path surfaced them from
    ``add_edge`` after parsing), first offender in arrival order wins.
    Blank lines, CRLF line endings, and unknown ``#`` comments are
    ignored.
    """
    declared_nodes: int | None = None
    declared_name: str | None = None
    edges_u, edges_v, edges_w = array("q"), array("q"), array("d")
    push_u, push_v, push_w = edges_u.append, edges_v.append, edges_w.append
    max_node = -1
    all_unit = True
    deferred: tuple | None = None
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, raw_line in enumerate(handle, start=1):
            line = raw_line.strip()
            if not line:
                continue
            if line[0] == "#":
                parts = line[1:].split()
                if len(parts) == 2 and parts[0] == "nodes":
                    declared_nodes = int(parts[1])
                elif len(parts) >= 2 and parts[0] == "name":
                    declared_name = " ".join(parts[1:])
                continue
            fields = line.split()
            count = len(fields)
            if count == 2:
                weight = 1.0
            elif count == 3:
                try:
                    weight = float(fields[2])
                except ValueError as exc:
                    raise ValueError(
                        f"{path}:{line_number}: non-numeric field in {line!r}"
                    ) from exc
                if weight != 1.0:
                    all_unit = False
            else:
                raise ValueError(
                    f"{path}:{line_number}: expected 'u v [weight]', "
                    f"got {line!r}"
                )
            try:
                u = int(fields[0])
                v = int(fields[1])
            except ValueError as exc:
                raise ValueError(
                    f"{path}:{line_number}: non-numeric field in {line!r}"
                ) from exc
            if u < 0 or v < 0:
                raise ValueError(
                    f"{path}:{line_number}: negative node id in {line!r}"
                )
            if deferred is None:
                if u == v:
                    deferred = ("self-loop", u)
                elif weight <= 0:
                    deferred = ("weight", weight)
            if u > v:
                u, v = v, u
            push_u(u)
            push_v(v)
            push_w(weight)
            if v > max_node:
                max_node = v
    return ParsedEdges(
        declared_nodes, declared_name, max_node,
        edges_u, edges_v, edges_w, deferred, all_unit,
    )


@topology_format(
    "rocketfuel",
    description="Rocketfuel-style ISP maps: 'uid ... -> <nbr> {ext}' rows",
)
def parse_rocketfuel(
    path,
    internal_delay: float = ROCKETFUEL_INTERNAL_DELAY,
    external_delay: float = ROCKETFUEL_EXTERNAL_DELAY,
) -> ParsedEdges:
    """Rocketfuel-style router rows.

    Each non-comment line describes one router: the first field is its
    uid, and every field after the ``->`` marker is a neighbor --
    ``<id>`` for an intra-ISP (internal) link, ``{id}`` for an external
    one.  Node ids are arbitrary tokens, remapped to dense ints in first-
    appearance order.  Self-loops are skipped (policy: the dataset's
    aliasing artifacts, not errors), reverse arcs collapse in dedup, and
    the delay model assigns ``internal_delay`` / ``external_delay``.
    """
    ids: dict[str, int] = {}
    edges_u, edges_v, edges_w = array("q"), array("q"), array("d")
    push_u, push_v, push_w = edges_u.append, edges_v.append, edges_w.append
    all_unit = internal_delay == 1.0 and external_delay == 1.0
    internal_delay = float(internal_delay)
    external_delay = float(external_delay)
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        for raw_line in handle:
            line = raw_line.strip()
            if not line or line[0] == "#":
                continue
            fields = line.split()
            try:
                arrow = fields.index("->")
            except ValueError:
                continue  # no adjacency on this row
            token = fields[0]
            u = ids.get(token)
            if u is None:
                u = ids[token] = len(ids)
            for field in fields[arrow + 1:]:
                if field.startswith("<") and field.endswith(">"):
                    weight = internal_delay
                elif field.startswith("{") and field.endswith("}"):
                    weight = external_delay
                else:
                    continue  # trailing annotations (=name, rn, ...)
                neighbor = field[1:-1]
                v = ids.get(neighbor)
                if v is None:
                    v = ids[neighbor] = len(ids)
                if u == v:
                    continue
                if u < v:
                    push_u(u)
                    push_v(v)
                else:
                    push_u(v)
                    push_v(u)
                push_w(weight)
    num_nodes = len(ids)
    return ParsedEdges(
        num_nodes, None, num_nodes - 1,
        edges_u, edges_v, edges_w, None, all_unit,
    )


@topology_format(
    "caida-aslinks",
    description="CAIDA AS-links style: 'D as1 as2 ...' / 'I as1 as2 ...'",
)
def parse_caida_aslinks(path, delay: float = 1.0) -> ParsedEdges:
    """CAIDA AS-links-style datasets.

    Lines starting with ``D`` (direct) or ``I`` (indirect) carry an AS
    adjacency in their next two fields; every other line (``T``, ``M``,
    comments) is metadata and skipped.  AS tokens (which may be
    multi-origin sets like ``"3356_174"``) remap to dense ints in first-
    appearance order.  AS-level hops share one ``delay`` (default 1.0:
    hop-count weights, the unit-weight regime the BFS kernel serves).
    """
    ids: dict[str, int] = {}
    edges_u, edges_v, edges_w = array("q"), array("q"), array("d")
    push_u, push_v, push_w = edges_u.append, edges_v.append, edges_w.append
    delay = float(delay)
    all_unit = delay == 1.0
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        for raw_line in handle:
            if not raw_line or raw_line[0] not in "DI":
                continue
            fields = raw_line.split()
            if len(fields) < 3:
                continue
            token_u, token_v = fields[1], fields[2]
            u = ids.get(token_u)
            if u is None:
                u = ids[token_u] = len(ids)
            v = ids.get(token_v)
            if v is None:
                v = ids[token_v] = len(ids)
            if u == v:
                continue
            if u < v:
                push_u(u)
                push_v(v)
            else:
                push_u(v)
                push_v(u)
            push_w(delay)
    num_nodes = len(ids)
    return ParsedEdges(
        num_nodes, None, num_nodes - 1,
        edges_u, edges_v, edges_w, None, all_unit,
    )


# -- flat-array assembly ---------------------------------------------------


def _ptr_q(slab):
    return (ctypes.c_int64 * len(slab)).from_buffer(slab) if len(slab) else None


def _ptr_d(slab):
    return (
        ctypes.c_double * len(slab)
    ).from_buffer(slab) if len(slab) else None


def dedup_edge_arrays(
    num_nodes: int, edges_u: array, edges_v: array, edges_w: array
) -> tuple[array, array, array]:
    """Collapse duplicate canonical edges in place; return the arrays.

    First arrival keeps its position with the minimum weight over all
    arrivals -- exactly ``Topology.add_edge``'s duplicate policy.  The C
    pass groups edges by lo endpoint with a stable counting sort (no
    Python per-edge objects); the fallback uses a pair-keyed dict.
    """
    num_edges = len(edges_w)
    lib = _ckernels.load_kernels()
    if lib is not None and num_edges and num_nodes:
        group = array("q", bytes(8 * (num_nodes + 1)))
        eorder = array("q", bytes(8 * num_edges))
        stamp = array("q", bytes(8 * num_nodes))
        firstj = array("q", bytes(8 * num_nodes))
        kept = lib.dedup_edges(
            num_edges, num_nodes,
            _ptr_q(edges_u), _ptr_q(edges_v), _ptr_d(edges_w),
            _ptr_q(group), _ptr_q(eorder), _ptr_q(stamp), _ptr_q(firstj),
        )
        if kept != num_edges:
            del edges_u[kept:]
            del edges_v[kept:]
            del edges_w[kept:]
        return edges_u, edges_v, edges_w
    first: dict[tuple[int, int], int] = {}
    out_u, out_v, out_w = array("q"), array("q"), array("d")
    for j in range(num_edges):
        key = (edges_u[j], edges_v[j])
        index = first.get(key)
        if index is None:
            first[key] = len(out_w)
            out_u.append(edges_u[j])
            out_v.append(edges_v[j])
            out_w.append(edges_w[j])
        elif edges_w[j] < out_w[index]:
            out_w[index] = edges_w[j]
    return out_u, out_v, out_w


def assemble_csr_slabs(
    num_nodes: int, edges_u, edges_v, edges_w
) -> tuple[array, array, array]:
    """Scatter deduplicated canonical edges into CSR arc slabs.

    Returns ``(offsets, neighbors, weights)`` laid out exactly as
    ``CSRGraph.from_topology`` would produce from a dict topology whose
    ``add_edge`` calls arrived in the same edge order.
    """
    num_edges = len(edges_w)
    offsets = array("q", bytes(8 * (num_nodes + 1)))
    neighbors = array("q", bytes(16 * num_edges))
    weights = array("d", bytes(16 * num_edges))
    lib = _ckernels.load_kernels()
    if lib is not None and num_edges and num_nodes:
        degrees = array("q", bytes(8 * num_nodes))
        p_degrees = _ptr_q(degrees)
        lib.bincount_i64(_ptr_q(edges_u), num_edges, p_degrees)
        lib.bincount_i64(_ptr_q(edges_v), num_edges, p_degrees)
        total = 0
        for node in range(num_nodes):
            total += degrees[node]
            offsets[node + 1] = total
        cursor = offsets[:num_nodes]
        lib.csr_fill(
            num_edges,
            _ptr_q(edges_u), _ptr_q(edges_v), _ptr_d(edges_w),
            _ptr_q(cursor), _ptr_q(neighbors), _ptr_d(weights),
        )
        return offsets, neighbors, weights
    degree_list = [0] * num_nodes
    for j in range(num_edges):
        degree_list[edges_u[j]] += 1
        degree_list[edges_v[j]] += 1
    total = 0
    for node in range(num_nodes):
        total += degree_list[node]
        offsets[node + 1] = total
    cursor = list(offsets[:num_nodes])
    for j in range(num_edges):
        u, v, w = edges_u[j], edges_v[j], edges_w[j]
        position = cursor[u]
        cursor[u] = position + 1
        neighbors[position] = v
        weights[position] = w
        position = cursor[v]
        cursor[v] = position + 1
        neighbors[position] = u
        weights[position] = w
    return offsets, neighbors, weights


# -- ingestion drivers -----------------------------------------------------


def file_digest(path) -> str:
    """Streaming SHA-256 of the dataset file (artifact cache key part)."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _streamed_profile(edges_w, all_unit: bool):
    from repro.graphs.csr import profile_weights

    if all_unit and len(edges_w):
        # Any multiset of 1.0s profiles identically; skip the O(m) rescan.
        return profile_weights((1.0,))
    return profile_weights(edges_w)


def ingest_file(
    path,
    *,
    fmt: str = "edge-list",
    name: str | None = None,
    backend: str = "csr",
    largest_component: bool = False,
    **params,
):
    """Parse ``path`` with the registered ``fmt`` parser.

    ``backend="csr"`` (default) returns the array-backed
    :class:`CSRTopology` straight off the streaming pass;
    ``backend="dict"`` replays the same parsed edges through
    ``Topology.add_edge`` and returns the dict-backed oracle (the two are
    bit-identical by construction and by the differential test suite).
    ``largest_component=True`` keeps only the largest connected component
    (real datasets are routinely disconnected).  ``params`` go to the
    parser (delay-model knobs).
    """
    spec = _FORMATS.get(fmt)
    if spec is None:
        raise ValueError(
            f"unknown topology format {fmt!r}; "
            f"available: {', '.join(available_formats())}"
        )
    parsed = spec.parse(path, **params)
    num_nodes = (
        parsed.declared_nodes
        if parsed.declared_nodes is not None
        else parsed.max_node + 1
    )
    if parsed.max_node >= num_nodes:
        raise ValueError(
            f"{path}: edge references node {parsed.max_node} but header "
            f"declares only {num_nodes} nodes"
        )
    if parsed.deferred is not None:
        kind, value = parsed.deferred
        if kind == "self-loop":
            raise ValueError(f"self-loops are not allowed (node {value})")
        raise ValueError(f"edge weight must be > 0, got {value}")
    topology_name = name or parsed.declared_name or os.path.basename(
        str(path)
    )
    if backend == "dict":
        topology: Topology = Topology(num_nodes, name=topology_name)
        add_edge = topology.add_edge
        edges_u, edges_v, edges_w = (
            parsed.edges_u, parsed.edges_v, parsed.edges_w,
        )
        for j in range(len(edges_w)):
            add_edge(edges_u[j], edges_v[j], edges_w[j])
    elif backend == "csr":
        edges_u, edges_v, edges_w = dedup_edge_arrays(
            num_nodes, parsed.edges_u, parsed.edges_v, parsed.edges_w
        )
        topology = CSRTopology.from_edge_arrays(
            num_nodes,
            edges_u,
            edges_v,
            edges_w,
            name=topology_name,
            profile=_streamed_profile(edges_w, parsed.all_unit),
        )
    else:
        raise ValueError(
            f"unknown backend {backend!r}; expected 'csr' or 'dict'"
        )
    if largest_component:
        topology, _mapping = topology.largest_component_subgraph()
        topology.name = topology_name
    return topology


def ingest_topology(
    path,
    *,
    fmt: str = "edge-list",
    name: str | None = None,
    largest_component: bool = False,
    **params,
):
    """Cached :func:`ingest_file` (CSR backend) through the active cache.

    The artifact key covers the file's content digest, the format, the
    largest-component flag, and every delay-model parameter -- editing
    the dataset or changing the delay model invalidates the artifact.
    Without an active cache this is a plain :func:`ingest_file`.
    """
    from repro.scenarios.cache import Uncacheable, active_cache, canonical_value

    cache = active_cache()

    def build():
        return ingest_file(
            path,
            fmt=fmt,
            name=name,
            backend="csr",
            largest_component=largest_component,
            **params,
        )

    if cache is None:
        return build()
    try:
        canonical = tuple(
            (key, canonical_value(value))
            for key, value in sorted(params.items())
        )
    except Uncacheable:
        return build()
    parts = (
        "ingest",
        fmt,
        file_digest(path),
        bool(largest_component),
        canonical,
    )
    return cache.topology(parts, build)
