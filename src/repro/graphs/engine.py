"""Shortest-path engine selection.

Two engines implement the :mod:`repro.graphs.shortest_paths` contract:

* ``"csr"`` (default) -- the flat-array kernels of
  :mod:`repro.graphs.csr`: generation-stamped scratch arenas, per-profile
  kernel selection (BFS for unit weights, Dial bucket queue for quantized
  weights, indexed 4-ary heap otherwise), an optional compiled C tier, and
  batched drivers.
* ``"reference"`` -- the original dict-based heapq implementation
  (:mod:`repro.graphs._reference_paths`), kept as the differential-testing
  oracle and as the "before" side of the perf-regression harness
  (``repro bench`` / ``BENCH_kernels.json``).

Both engines produce identical distances and predecessors (the differential
tests in ``tests/test_graphs_csr.py`` and
``tests/test_graphs_kernels_weighted.py`` enforce this bit-for-bit), so the
switch is purely a performance knob.  The selection is global (module-level)
rather than per-call: the protocols issue shortest-path queries from many
layers, and a single switch point keeps an entire simulation on one engine.

Examples
--------
>>> get_engine()
'csr'
>>> with use_engine("reference"):
...     get_engine()
'reference'
>>> get_engine()
'csr'
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

__all__ = ["ENGINES", "get_engine", "set_engine", "use_engine"]

#: The selectable engine names, in preference order.
ENGINES = ("csr", "reference")

_engine = "csr"


def get_engine() -> str:
    """Return the active engine name (``"csr"`` or ``"reference"``)."""
    return _engine


def set_engine(name: str) -> None:
    """Select the shortest-path engine globally.

    Raises ``ValueError`` for unknown names:

    >>> set_engine("numpy")
    Traceback (most recent call last):
        ...
    ValueError: unknown engine 'numpy'; expected one of ('csr', 'reference')
    """
    global _engine
    if name not in ENGINES:
        raise ValueError(f"unknown engine {name!r}; expected one of {ENGINES}")
    _engine = name


@contextmanager
def use_engine(name: str) -> Iterator[None]:
    """Temporarily switch engines (used by benchmarks and tests).

    Restores the previous engine on exit, even when the body raises.
    """
    previous = get_engine()
    set_engine(name)
    try:
        yield
    finally:
        set_engine(previous)
