"""Shortest-path engine selection.

Two engines implement the :mod:`repro.graphs.shortest_paths` contract:

* ``"csr"`` (default) -- the flat-array kernels of
  :mod:`repro.graphs.csr`, with generation-stamped scratch, a BFS fast path
  for unit-weight graphs, and batched drivers.
* ``"reference"`` -- the original dict-based heapq implementation
  (:mod:`repro.graphs._reference_paths`), kept as the differential-testing
  oracle and as the "before" side of the perf-regression harness
  (``repro bench`` / ``BENCH_kernels.json``).

Both engines produce identical distances and predecessors (the differential
tests in ``tests/test_graphs_csr.py`` enforce this bit-for-bit), so the
switch is purely a performance knob.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

__all__ = ["ENGINES", "get_engine", "set_engine", "use_engine"]

ENGINES = ("csr", "reference")

_engine = "csr"


def get_engine() -> str:
    """Return the active engine name (``"csr"`` or ``"reference"``)."""
    return _engine


def set_engine(name: str) -> None:
    """Select the shortest-path engine globally."""
    global _engine
    if name not in ENGINES:
        raise ValueError(f"unknown engine {name!r}; expected one of {ENGINES}")
    _engine = name


@contextmanager
def use_engine(name: str) -> Iterator[None]:
    """Temporarily switch engines (used by benchmarks and tests)."""
    previous = get_engine()
    set_engine(name)
    try:
        yield
    finally:
        set_engine(previous)
