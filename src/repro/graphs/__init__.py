"""Graph substrate: topologies, generators, and shortest-path machinery.

Everything above this package (protocols, simulators, experiments) talks to
graphs exclusively through :class:`repro.graphs.Topology` and the functions in
:mod:`repro.graphs.shortest_paths`.  Those functions are thin wrappers over
the flat-array CSR kernels in :mod:`repro.graphs.csr` (generation-stamped
scratch arrays, a BFS fast path for unit-weight graphs, batched multi-source
drivers); the original dict-based implementation survives in
:mod:`repro.graphs._reference_paths` as a differential-testing oracle and the
"before" side of the perf harness (see :mod:`repro.graphs.engine`).
``networkx`` is used only as a cross-check oracle in the test suite.
"""

from repro.graphs.topology import Topology
from repro.graphs.csr import CSRGraph, parallel_k_nearest, parallel_radius
from repro.graphs.engine import get_engine, set_engine, use_engine
from repro.graphs.generators import (
    geometric_random_graph,
    gnm_random_graph,
    grid_graph,
    internet_as_level,
    internet_router_level,
    line_graph,
    ring_graph,
    star_graph,
    two_level_tree,
)
from repro.graphs.shortest_paths import (
    all_pairs_sampled_distances,
    dijkstra,
    dijkstra_k_nearest,
    dijkstra_radius,
    extract_path,
    path_length,
    shortest_path,
    shortest_path_tree,
)
from repro.graphs.io import read_edge_list, write_edge_list
from repro.graphs.sampling import sample_nodes, sample_pairs

__all__ = [
    "CSRGraph",
    "Topology",
    "all_pairs_sampled_distances",
    "dijkstra",
    "dijkstra_k_nearest",
    "dijkstra_radius",
    "extract_path",
    "geometric_random_graph",
    "get_engine",
    "gnm_random_graph",
    "grid_graph",
    "internet_as_level",
    "internet_router_level",
    "line_graph",
    "parallel_k_nearest",
    "parallel_radius",
    "path_length",
    "read_edge_list",
    "ring_graph",
    "sample_nodes",
    "sample_pairs",
    "set_engine",
    "shortest_path",
    "shortest_path_tree",
    "star_graph",
    "two_level_tree",
    "use_engine",
    "write_edge_list",
]
