"""Graph substrate: topologies, generators, and shortest-path machinery.

Everything above this package (protocols, simulators, experiments) talks to
graphs exclusively through :class:`repro.graphs.Topology` and the functions in
:mod:`repro.graphs.shortest_paths`.  The substrate is implemented in pure
Python with ``heapq``-based Dijkstra variants tuned for the access patterns
compact routing needs (k-nearest truncated searches, radius-bounded searches,
landmark shortest-path trees).  ``networkx`` is used only as a cross-check
oracle in the test suite.
"""

from repro.graphs.topology import Topology
from repro.graphs.generators import (
    geometric_random_graph,
    gnm_random_graph,
    grid_graph,
    internet_as_level,
    internet_router_level,
    line_graph,
    ring_graph,
    star_graph,
    two_level_tree,
)
from repro.graphs.shortest_paths import (
    all_pairs_sampled_distances,
    dijkstra,
    dijkstra_k_nearest,
    dijkstra_radius,
    extract_path,
    path_length,
    shortest_path,
    shortest_path_tree,
)
from repro.graphs.io import read_edge_list, write_edge_list
from repro.graphs.sampling import sample_nodes, sample_pairs

__all__ = [
    "Topology",
    "all_pairs_sampled_distances",
    "dijkstra",
    "dijkstra_k_nearest",
    "dijkstra_radius",
    "extract_path",
    "geometric_random_graph",
    "gnm_random_graph",
    "grid_graph",
    "internet_as_level",
    "internet_router_level",
    "line_graph",
    "path_length",
    "read_edge_list",
    "ring_graph",
    "sample_nodes",
    "sample_pairs",
    "shortest_path",
    "shortest_path_tree",
    "star_graph",
    "two_level_tree",
    "write_edge_list",
]
