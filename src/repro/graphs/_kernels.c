/* Weighted shortest-path kernels over CSR slabs.
 *
 * Compiled on demand by repro.graphs._ckernels (cc -O3 -shared) and called
 * through ctypes; when no C compiler is available the pure-Python kernels in
 * repro.graphs.csr run instead.  Both tiers implement the same contract, and
 * the differential tests assert bit-identical distances and predecessors
 * against the dict-based reference engine.
 *
 * Shared semantics (identical to the Python kernels):
 *
 *   - Nodes settle in (distance, node id) order.
 *   - Equal-distance predecessor ties resolve toward the smaller id.
 *   - Distances are IEEE doubles accumulated as dist[pred] + weight, so the
 *     floating-point results match the Python engines bit for bit.
 *   - The scratch arena (dist / pred / seen) is generation-stamped: a search
 *     touches O(settled + scanned) state, never O(n), which keeps truncated
 *     searches (k-nearest, radius) cheap inside large batches.
 *
 * Three kernels:
 *
 *   spt_heap4 -- Dijkstra over an indexed 4-ary heap with position-tracked
 *     decrease-key.  Each node is stored at most once (pos[] tracks its
 *     slot), so there are no stale entries, no tuple allocation, and no
 *     per-search allocation at all: heap and pos are preallocated n-slot
 *     arena arrays.
 *
 *   spt_dial -- Dial-style bucket queue for graphs whose weights are all
 *     integer multiples of one power-of-two quantum.  Distances are then
 *     exact multiples of the quantum, bucket indices are exact integers, and
 *     the circular bucket ring needs only max_quanta + 1 slots.  Entries are
 *     lazily deleted: a decrease appends a fresh entry and the stale one is
 *     dropped when its slot is swept (dist[node] no longer matches the
 *     slot's level).  Each directed edge relaxes at most once, so the entry
 *     pool is bounded by 2m + 1 slots.
 *
 *   spt_bfs -- level-ordered BFS for unit-weight graphs (hop-count
 *     topologies: G(n,m), the Internet-like maps, real AS-links datasets).
 *     Each frontier is sorted by node id before settling, which reproduces
 *     the (distance, id) settle order at truncation boundaries and makes
 *     the first discoverer of a node its min-id parent -- the heap kernel's
 *     tie-break with no per-edge comparison.  Distances are written at
 *     settlement, not discovery, exactly like the Python BFS kernel.
 */

#include <stdint.h>
#include <stdlib.h>
#include <string.h>

typedef int64_t i64;

#define RADIUS_NONE 0
#define RADIUS_STRICT 1
#define RADIUS_INCLUSIVE 2

/* Buckets hold equal-distance nodes, so ascending-id order within a bucket
 * is exactly the global (distance, id) settle order. */
static int cmp_i64(const void *a, const void *b)
{
    i64 x = *(const i64 *)a, y = *(const i64 *)b;
    return (x > y) - (x < y);
}

static i64 setup_targets(i64 n, const i64 *targets, i64 num_targets,
                         unsigned char *tflag)
{
    i64 remaining = 0;
    memset(tflag, 0, (size_t)n);
    for (i64 t = 0; t < num_targets; t++) {
        if (!tflag[targets[t]]) {
            tflag[targets[t]] = 1;
            remaining++;
        }
    }
    return remaining;
}

/* ------------------------------------------------------------------ heap4 */

i64 spt_heap4(
    i64 n,
    const i64 *offsets, const i64 *neighbors, const double *weights,
    i64 source,
    double *dist, i64 *pred, i64 *seen, i64 generation,
    i64 *order,
    i64 *heap, i64 *pos,
    i64 k,                       /* <= 0: unbounded */
    double radius, i64 radius_mode,
    const i64 *targets, i64 num_targets, unsigned char *tflag)
{
    i64 settled = 0, size = 1, remaining = 0;

    if (num_targets > 0)
        remaining = setup_targets(n, targets, num_targets, tflag);

    seen[source] = generation;
    dist[source] = 0.0;
    pred[source] = -1;
    heap[0] = source;
    pos[source] = 0;

    while (size) {
        if (k > 0 && settled >= k)
            break;
        i64 node = heap[0];
        double d = dist[node];
        if (radius_mode == RADIUS_INCLUSIVE) {
            if (d > radius)
                break;
        } else if (radius_mode == RADIUS_STRICT) {
            if (d >= radius && node != source)
                break;
        }

        /* pop-min: move the last leaf to the root and sift it down. */
        size--;
        if (size) {
            i64 moved = heap[size];
            double md = dist[moved];
            i64 i = 0;
            for (;;) {
                i64 child = (i << 2) + 1;
                if (child >= size)
                    break;
                i64 end = child + 4;
                if (end > size)
                    end = size;
                i64 best = child;
                i64 bn = heap[child];
                double bd = dist[bn];
                for (i64 j = child + 1; j < end; j++) {
                    i64 cn = heap[j];
                    double cd = dist[cn];
                    if (cd < bd || (cd == bd && cn < bn)) {
                        best = j;
                        bn = cn;
                        bd = cd;
                    }
                }
                if (bd < md || (bd == md && bn < moved)) {
                    heap[i] = bn;
                    pos[bn] = i;
                    i = best;
                } else {
                    break;
                }
            }
            heap[i] = moved;
            pos[moved] = i;
        }

        order[settled++] = node;
        if (remaining > 0 && tflag[node]) {
            tflag[node] = 0;
            if (--remaining == 0)
                break;
        }

        for (i64 e = offsets[node]; e < offsets[node + 1]; e++) {
            i64 nb = neighbors[e];
            double candidate = d + weights[e];
            if (seen[nb] != generation) {
                seen[nb] = generation;
                dist[nb] = candidate;
                pred[nb] = node;
                /* insert at the end and sift up */
                i64 i = size++;
                while (i) {
                    i64 parent = (i - 1) >> 2;
                    i64 pn = heap[parent];
                    double pd = dist[pn];
                    if (candidate < pd || (candidate == pd && nb < pn)) {
                        heap[i] = pn;
                        pos[pn] = i;
                        i = parent;
                    } else {
                        break;
                    }
                }
                heap[i] = nb;
                pos[nb] = i;
            } else {
                double current = dist[nb];
                if (candidate < current) {
                    /* decrease-key: update in place and sift up from pos. */
                    dist[nb] = candidate;
                    pred[nb] = node;
                    i64 i = pos[nb];
                    while (i) {
                        i64 parent = (i - 1) >> 2;
                        i64 pn = heap[parent];
                        double pd = dist[pn];
                        if (candidate < pd || (candidate == pd && nb < pn)) {
                            heap[i] = pn;
                            pos[pn] = i;
                            i = parent;
                        } else {
                            break;
                        }
                    }
                    heap[i] = nb;
                    pos[nb] = i;
                } else if (candidate == current && node < pred[nb]) {
                    pred[nb] = node;
                }
            }
        }
    }
    return settled;
}

/* ------------------------------------------------------------------- dial */

i64 spt_dial(
    i64 n,
    const i64 *offsets, const i64 *neighbors, const double *weights,
    i64 source,
    double *dist, i64 *pred, i64 *seen, i64 generation,
    i64 *order,
    double quantum, i64 num_slots,   /* max_quanta + 1 circular slots */
    i64 *head,                       /* num_slots entries, reset on exit */
    i64 *pool_node, i64 *pool_next,  /* 2m + 1 entries */
    i64 *batch,                      /* n-slot scratch for one bucket */
    i64 k,
    double radius, i64 radius_mode,
    const i64 *targets, i64 num_targets, unsigned char *tflag)
{
    i64 settled = 0, pending = 1, pool_used = 0, remaining = 0;
    i64 level_q = 0; /* current level in quanta */
    double inv_quantum = 1.0 / quantum;
    i64 slot, stop = 0;

    if (num_targets > 0)
        remaining = setup_targets(n, targets, num_targets, tflag);

    for (slot = 0; slot < num_slots; slot++)
        head[slot] = -1;

    seen[source] = generation;
    dist[source] = 0.0;
    pred[source] = -1;
    pool_node[0] = source;
    pool_next[0] = -1;
    head[0] = 0;
    pool_used = 1;

    while (pending && !stop) {
        slot = level_q % num_slots;
        i64 entry = head[slot];
        if (entry < 0) {
            level_q++;
            continue;
        }
        head[slot] = -1;
        double level = (double)level_q * quantum;

        if (radius_mode == RADIUS_INCLUSIVE) {
            if (level > radius)
                break;
        } else if (radius_mode == RADIUS_STRICT) {
            if (level >= radius && level_q > 0)
                break;
        }

        /* Collect the live entries; everything in this slot either has
         * dist == level (live, final) or was decreased away (stale). */
        i64 count = 0;
        while (entry >= 0) {
            i64 node = pool_node[entry];
            pending--;
            if (dist[node] == level)
                batch[count++] = node;
            entry = pool_next[entry];
        }
        if (count > 1)
            qsort(batch, (size_t)count, sizeof(i64), cmp_i64);

        for (i64 b = 0; b < count; b++) {
            i64 node = batch[b];
            if (k > 0 && settled >= k) {
                stop = 1;
                break;
            }
            order[settled++] = node;
            if (remaining > 0 && tflag[node]) {
                tflag[node] = 0;
                if (--remaining == 0) {
                    stop = 1;
                    break;
                }
            }
            for (i64 e = offsets[node]; e < offsets[node + 1]; e++) {
                i64 nb = neighbors[e];
                double candidate = level + weights[e];
                if (seen[nb] != generation) {
                    seen[nb] = generation;
                } else {
                    double current = dist[nb];
                    if (candidate < current) {
                        /* fall through to the append below */
                    } else {
                        if (candidate == current && node < pred[nb])
                            pred[nb] = node;
                        continue;
                    }
                }
                dist[nb] = candidate;
                pred[nb] = node;
                i64 cslot = (i64)(candidate * inv_quantum) % num_slots;
                pool_node[pool_used] = nb;
                pool_next[pool_used] = head[cslot];
                head[cslot] = pool_used;
                pool_used++;
                pending++;
            }
        }
        level_q++;
    }

    /* Leave the ring clean for the next search (only slots that may still
     * hold entries: those of pending stale nodes).  O(num_slots). */
    for (slot = 0; slot < num_slots; slot++)
        head[slot] = -1;
    return settled;
}

/* -------------------------------------------------------------------- bfs */

i64 spt_bfs(
    i64 n,
    const i64 *offsets, const i64 *neighbors,
    i64 source,
    double *dist, i64 *pred, i64 *seen, i64 generation,
    i64 *order,
    i64 *frontier, i64 *next_frontier,  /* n slots each */
    i64 k,                              /* <= 0: unbounded */
    double radius, i64 radius_mode,
    const i64 *targets, i64 num_targets, unsigned char *tflag)
{
    i64 settled = 0, remaining = 0;
    i64 fsize = 1;
    double level = 0.0;

    if (num_targets > 0)
        remaining = setup_targets(n, targets, num_targets, tflag);

    seen[source] = generation;
    pred[source] = -1;
    frontier[0] = source;

    while (fsize) {
        if (radius_mode == RADIUS_INCLUSIVE) {
            if (level > radius)
                break;
        } else if (radius_mode == RADIUS_STRICT) {
            if (level >= radius && level > 0.0)
                break;
        }
        if (fsize > 1)
            qsort(frontier, (size_t)fsize, sizeof(i64), cmp_i64);
        if (k > 0) {
            i64 room = k - settled;
            if (fsize >= room) {
                /* The truncated level is settled without scanning its
                 * edges: anything it would discover can never settle. */
                for (i64 i = 0; i < room; i++) {
                    i64 node = frontier[i];
                    dist[node] = level;
                    order[settled++] = node;
                }
                break;
            }
        }
        i64 nsize = 0, stop = 0;
        for (i64 i = 0; i < fsize; i++) {
            i64 node = frontier[i];
            dist[node] = level;
            order[settled++] = node;
            if (remaining > 0 && tflag[node]) {
                tflag[node] = 0;
                if (--remaining == 0) {
                    stop = 1;
                    break;
                }
            }
            for (i64 e = offsets[node]; e < offsets[node + 1]; e++) {
                i64 nb = neighbors[e];
                if (seen[nb] != generation) {
                    seen[nb] = generation;
                    pred[nb] = node;
                    next_frontier[nsize++] = nb;
                }
            }
        }
        if (stop)
            break;
        i64 *swap = frontier;
        frontier = next_frontier;
        next_frontier = swap;
        fsize = nsize;
        level += 1.0;
    }
    return settled;
}

/* ------------------------------------------------------------ slab helpers
 *
 * Small flat-array passes used by the slab-direct substrate build: they move
 * kernel results (scratch-arena rows, settle orders) into SubstrateTables
 * slabs without boxing each element through a Python object.  All of them
 * have pure-Python fallbacks in repro.graphs.csr / repro.core.landmarks.
 */

/* dst[i] = src[idx[i]] -- extract a settle-ordered row from an arena. */
void gather_f64(const i64 *idx, const double *src, double *dst, i64 count)
{
    for (i64 i = 0; i < count; i++)
        dst[i] = src[idx[i]];
}

void gather_i64(const i64 *idx, const i64 *src, i64 *dst, i64 count)
{
    for (i64 i = 0; i < count; i++)
        dst[i] = src[idx[i]];
}

/* One ascending-landmark step of the closest-landmark sweep.  best_dist is
 * initialised to +inf, landmarks are processed in ascending id order, and
 * the strict < keeps equal-distance ties on the smaller landmark id --
 * exactly the reference semantics of repro.core.landmarks.closest_landmarks.
 */
void closest_update(i64 n, const double *dist, i64 landmark,
                    double *best_dist, i64 *best_landmark)
{
    for (i64 v = 0; v < n; v++) {
        if (dist[v] < best_dist[v]) {
            best_dist[v] = dist[v];
            best_landmark[v] = landmark;
        }
    }
}

/* counts[src[i]] += 1 for every i -- S4 cluster sizes over a flat members
 * slab.  Values must already be bounds-checked by the caller. */
void bincount_i64(const i64 *src, i64 count, i64 *counts)
{
    for (i64 i = 0; i < count; i++)
        counts[src[i]]++;
}

/* ------------------------------------------------------- ingestion helpers
 *
 * Used by the streaming topology ingestion (repro.graphs.ingest) to turn
 * flat canonical edge arrays into CSR slabs without materializing a Python
 * object per edge.  Pure-Python fallbacks live next to the callers.
 */

/* Scatter canonical undirected edges into CSR arc slabs.  Edge j places its
 * two directed arcs at cursor[eu[j]]++ and cursor[ev[j]]++, reproducing the
 * arc order of CSRGraph.from_topology over a dict Topology whose add_edge
 * calls arrived in the same edge order (each new edge appends one arc to
 * both endpoint rows).  cursor must start as a copy of offsets[0..n-1]. */
void csr_fill(i64 num_edges,
              const i64 *eu, const i64 *ev, const double *ew,
              i64 *cursor, i64 *nbrs, double *wts)
{
    for (i64 j = 0; j < num_edges; j++) {
        i64 u = eu[j], v = ev[j];
        double w = ew[j];
        i64 p = cursor[u]++;
        nbrs[p] = v;
        wts[p] = w;
        p = cursor[v]++;
        nbrs[p] = u;
        wts[p] = w;
    }
}

/* Collapse duplicate canonical edges in arrival order, keeping the first
 * occurrence with the minimum weight over all occurrences -- exactly
 * Topology.add_edge's duplicate policy.  eu/ev hold canonical endpoints
 * (eu[j] < ev[j]); the three arrays are compacted in place and the deduped
 * edge count is returned.  Scratch: group (n + 1 slots), eorder (m slots),
 * stamp and firstj (n slots each); all are overwritten.
 *
 * The pass groups edges by their lo endpoint with a stable counting sort,
 * so one n-slot stamp array distinguishes (lo, hi) pairs: within lo's
 * group, stamp[hi] == lo + 1 marks an already-seen pair and firstj[hi]
 * remembers its first (arrival-order) edge index. */
i64 dedup_edges(i64 m, i64 n,
                i64 *eu, i64 *ev, double *ew,
                i64 *group, i64 *eorder, i64 *stamp, i64 *firstj)
{
    if (m <= 0)
        return m;
    memset(group, 0, sizeof(i64) * (size_t)(n + 1));
    for (i64 j = 0; j < m; j++)
        group[eu[j] + 1]++;
    for (i64 u = 0; u < n; u++)
        group[u + 1] += group[u];
    for (i64 j = 0; j < m; j++)
        eorder[group[eu[j]]++] = j;
    memset(stamp, 0, sizeof(i64) * (size_t)n);
    i64 dropped = 0;
    for (i64 p = 0; p < m; p++) {
        i64 j = eorder[p];
        i64 lo = eu[j], hi = ev[j];
        if (stamp[hi] == lo + 1) {
            i64 f = firstj[hi];
            if (ew[j] < ew[f])
                ew[f] = ew[j];
            eu[j] = -1; /* dropped; compacted out below */
            dropped++;
        } else {
            stamp[hi] = lo + 1;
            firstj[hi] = j;
        }
    }
    if (!dropped)
        return m;
    i64 w = 0;
    for (i64 j = 0; j < m; j++) {
        if (eu[j] >= 0) {
            if (w != j) {
                eu[w] = eu[j];
                ev[w] = ev[j];
                ew[w] = ew[j];
            }
            w++;
        }
    }
    return w;
}
