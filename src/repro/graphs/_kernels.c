/* Weighted shortest-path kernels over CSR slabs.
 *
 * Compiled on demand by repro.graphs._ckernels (cc -O3 -shared) and called
 * through ctypes; when no C compiler is available the pure-Python kernels in
 * repro.graphs.csr run instead.  Both tiers implement the same contract, and
 * the differential tests assert bit-identical distances and predecessors
 * against the dict-based reference engine.
 *
 * Shared semantics (identical to the Python kernels):
 *
 *   - Nodes settle in (distance, node id) order.
 *   - Equal-distance predecessor ties resolve toward the smaller id.
 *   - Distances are IEEE doubles accumulated as dist[pred] + weight, so the
 *     floating-point results match the Python engines bit for bit.
 *   - The scratch arena (dist / pred / seen) is generation-stamped: a search
 *     touches O(settled + scanned) state, never O(n), which keeps truncated
 *     searches (k-nearest, radius) cheap inside large batches.
 *
 * Three kernels:
 *
 *   spt_heap4 -- Dijkstra over an indexed 4-ary heap with position-tracked
 *     decrease-key.  Each node is stored at most once (pos[] tracks its
 *     slot), so there are no stale entries, no tuple allocation, and no
 *     per-search allocation at all: heap and pos are preallocated n-slot
 *     arena arrays.
 *
 *   spt_dial -- Dial-style bucket queue for graphs whose weights are all
 *     integer multiples of one power-of-two quantum.  Distances are then
 *     exact multiples of the quantum, bucket indices are exact integers, and
 *     the circular bucket ring needs only max_quanta + 1 slots.  Entries are
 *     lazily deleted: a decrease appends a fresh entry and the stale one is
 *     dropped when its slot is swept (dist[node] no longer matches the
 *     slot's level).  Each directed edge relaxes at most once, so the entry
 *     pool is bounded by 2m + 1 slots.
 *
 *   spt_bfs -- level-ordered BFS for unit-weight graphs (hop-count
 *     topologies: G(n,m), the Internet-like maps, real AS-links datasets).
 *     Each frontier is sorted by node id before settling, which reproduces
 *     the (distance, id) settle order at truncation boundaries and makes
 *     the first discoverer of a node its min-id parent -- the heap kernel's
 *     tie-break with no per-edge comparison.  Distances are written at
 *     settlement, not discovery, exactly like the Python BFS kernel.
 */

#include <math.h>
#include <pthread.h>
#include <stdint.h>
#include <stdlib.h>
#include <string.h>

typedef int64_t i64;

#define RADIUS_NONE 0
#define RADIUS_STRICT 1
#define RADIUS_INCLUSIVE 2

/* Buckets hold equal-distance nodes, so ascending-id order within a bucket
 * is exactly the global (distance, id) settle order. */
static int cmp_i64(const void *a, const void *b)
{
    i64 x = *(const i64 *)a, y = *(const i64 *)b;
    return (x > y) - (x < y);
}

static i64 setup_targets(i64 n, const i64 *targets, i64 num_targets,
                         unsigned char *tflag)
{
    i64 remaining = 0;
    memset(tflag, 0, (size_t)n);
    for (i64 t = 0; t < num_targets; t++) {
        if (!tflag[targets[t]]) {
            tflag[targets[t]] = 1;
            remaining++;
        }
    }
    return remaining;
}

/* ------------------------------------------------------------------ heap4 */

i64 spt_heap4(
    i64 n,
    const i64 *offsets, const i64 *neighbors, const double *weights,
    i64 source,
    double *dist, i64 *pred, i64 *seen, i64 generation,
    i64 *order,
    i64 *heap, i64 *pos,
    i64 k,                       /* <= 0: unbounded */
    double radius, i64 radius_mode,
    const i64 *targets, i64 num_targets, unsigned char *tflag)
{
    i64 settled = 0, size = 1, remaining = 0;

    if (num_targets > 0)
        remaining = setup_targets(n, targets, num_targets, tflag);

    seen[source] = generation;
    dist[source] = 0.0;
    pred[source] = -1;
    heap[0] = source;
    pos[source] = 0;

    while (size) {
        if (k > 0 && settled >= k)
            break;
        i64 node = heap[0];
        double d = dist[node];
        if (radius_mode == RADIUS_INCLUSIVE) {
            if (d > radius)
                break;
        } else if (radius_mode == RADIUS_STRICT) {
            if (d >= radius && node != source)
                break;
        }

        /* pop-min: move the last leaf to the root and sift it down. */
        size--;
        if (size) {
            i64 moved = heap[size];
            double md = dist[moved];
            i64 i = 0;
            for (;;) {
                i64 child = (i << 2) + 1;
                if (child >= size)
                    break;
                i64 end = child + 4;
                if (end > size)
                    end = size;
                i64 best = child;
                i64 bn = heap[child];
                double bd = dist[bn];
                for (i64 j = child + 1; j < end; j++) {
                    i64 cn = heap[j];
                    double cd = dist[cn];
                    if (cd < bd || (cd == bd && cn < bn)) {
                        best = j;
                        bn = cn;
                        bd = cd;
                    }
                }
                if (bd < md || (bd == md && bn < moved)) {
                    heap[i] = bn;
                    pos[bn] = i;
                    i = best;
                } else {
                    break;
                }
            }
            heap[i] = moved;
            pos[moved] = i;
        }

        order[settled++] = node;
        if (remaining > 0 && tflag[node]) {
            tflag[node] = 0;
            if (--remaining == 0)
                break;
        }

        for (i64 e = offsets[node]; e < offsets[node + 1]; e++) {
            i64 nb = neighbors[e];
            double candidate = d + weights[e];
            if (seen[nb] != generation) {
                seen[nb] = generation;
                dist[nb] = candidate;
                pred[nb] = node;
                /* insert at the end and sift up */
                i64 i = size++;
                while (i) {
                    i64 parent = (i - 1) >> 2;
                    i64 pn = heap[parent];
                    double pd = dist[pn];
                    if (candidate < pd || (candidate == pd && nb < pn)) {
                        heap[i] = pn;
                        pos[pn] = i;
                        i = parent;
                    } else {
                        break;
                    }
                }
                heap[i] = nb;
                pos[nb] = i;
            } else {
                double current = dist[nb];
                if (candidate < current) {
                    /* decrease-key: update in place and sift up from pos. */
                    dist[nb] = candidate;
                    pred[nb] = node;
                    i64 i = pos[nb];
                    while (i) {
                        i64 parent = (i - 1) >> 2;
                        i64 pn = heap[parent];
                        double pd = dist[pn];
                        if (candidate < pd || (candidate == pd && nb < pn)) {
                            heap[i] = pn;
                            pos[pn] = i;
                            i = parent;
                        } else {
                            break;
                        }
                    }
                    heap[i] = nb;
                    pos[nb] = i;
                } else if (candidate == current && node < pred[nb]) {
                    pred[nb] = node;
                }
            }
        }
    }
    return settled;
}

/* ------------------------------------------------------------------- dial */

i64 spt_dial(
    i64 n,
    const i64 *offsets, const i64 *neighbors, const double *weights,
    i64 source,
    double *dist, i64 *pred, i64 *seen, i64 generation,
    i64 *order,
    double quantum, i64 num_slots,   /* max_quanta + 1 circular slots */
    i64 *head,                       /* num_slots entries, reset on exit */
    i64 *pool_node, i64 *pool_next,  /* 2m + 1 entries */
    i64 *batch,                      /* n-slot scratch for one bucket */
    i64 k,
    double radius, i64 radius_mode,
    const i64 *targets, i64 num_targets, unsigned char *tflag)
{
    i64 settled = 0, pending = 1, pool_used = 0, remaining = 0;
    i64 level_q = 0; /* current level in quanta */
    double inv_quantum = 1.0 / quantum;
    i64 slot, stop = 0;

    if (num_targets > 0)
        remaining = setup_targets(n, targets, num_targets, tflag);

    for (slot = 0; slot < num_slots; slot++)
        head[slot] = -1;

    seen[source] = generation;
    dist[source] = 0.0;
    pred[source] = -1;
    pool_node[0] = source;
    pool_next[0] = -1;
    head[0] = 0;
    pool_used = 1;

    while (pending && !stop) {
        slot = level_q % num_slots;
        i64 entry = head[slot];
        if (entry < 0) {
            level_q++;
            continue;
        }
        head[slot] = -1;
        double level = (double)level_q * quantum;

        if (radius_mode == RADIUS_INCLUSIVE) {
            if (level > radius)
                break;
        } else if (radius_mode == RADIUS_STRICT) {
            if (level >= radius && level_q > 0)
                break;
        }

        /* Collect the live entries; everything in this slot either has
         * dist == level (live, final) or was decreased away (stale). */
        i64 count = 0;
        while (entry >= 0) {
            i64 node = pool_node[entry];
            pending--;
            if (dist[node] == level)
                batch[count++] = node;
            entry = pool_next[entry];
        }
        if (count > 1)
            qsort(batch, (size_t)count, sizeof(i64), cmp_i64);

        for (i64 b = 0; b < count; b++) {
            i64 node = batch[b];
            if (k > 0 && settled >= k) {
                stop = 1;
                break;
            }
            order[settled++] = node;
            if (remaining > 0 && tflag[node]) {
                tflag[node] = 0;
                if (--remaining == 0) {
                    stop = 1;
                    break;
                }
            }
            for (i64 e = offsets[node]; e < offsets[node + 1]; e++) {
                i64 nb = neighbors[e];
                double candidate = level + weights[e];
                if (seen[nb] != generation) {
                    seen[nb] = generation;
                } else {
                    double current = dist[nb];
                    if (candidate < current) {
                        /* fall through to the append below */
                    } else {
                        if (candidate == current && node < pred[nb])
                            pred[nb] = node;
                        continue;
                    }
                }
                dist[nb] = candidate;
                pred[nb] = node;
                i64 cslot = (i64)(candidate * inv_quantum) % num_slots;
                pool_node[pool_used] = nb;
                pool_next[pool_used] = head[cslot];
                head[cslot] = pool_used;
                pool_used++;
                pending++;
            }
        }
        level_q++;
    }

    /* Leave the ring clean for the next search (only slots that may still
     * hold entries: those of pending stale nodes).  O(num_slots). */
    for (slot = 0; slot < num_slots; slot++)
        head[slot] = -1;
    return settled;
}

/* -------------------------------------------------------------------- bfs */

i64 spt_bfs(
    i64 n,
    const i64 *offsets, const i64 *neighbors,
    i64 source,
    double *dist, i64 *pred, i64 *seen, i64 generation,
    i64 *order,
    i64 *frontier, i64 *next_frontier,  /* n slots each */
    i64 k,                              /* <= 0: unbounded */
    double radius, i64 radius_mode,
    const i64 *targets, i64 num_targets, unsigned char *tflag)
{
    i64 settled = 0, remaining = 0;
    i64 fsize = 1;
    double level = 0.0;

    if (num_targets > 0)
        remaining = setup_targets(n, targets, num_targets, tflag);

    seen[source] = generation;
    pred[source] = -1;
    frontier[0] = source;

    while (fsize) {
        if (radius_mode == RADIUS_INCLUSIVE) {
            if (level > radius)
                break;
        } else if (radius_mode == RADIUS_STRICT) {
            if (level >= radius && level > 0.0)
                break;
        }
        if (fsize > 1)
            qsort(frontier, (size_t)fsize, sizeof(i64), cmp_i64);
        if (k > 0) {
            i64 room = k - settled;
            if (fsize >= room) {
                /* The truncated level is settled without scanning its
                 * edges: anything it would discover can never settle. */
                for (i64 i = 0; i < room; i++) {
                    i64 node = frontier[i];
                    dist[node] = level;
                    order[settled++] = node;
                }
                break;
            }
        }
        i64 nsize = 0, stop = 0;
        for (i64 i = 0; i < fsize; i++) {
            i64 node = frontier[i];
            dist[node] = level;
            order[settled++] = node;
            if (remaining > 0 && tflag[node]) {
                tflag[node] = 0;
                if (--remaining == 0) {
                    stop = 1;
                    break;
                }
            }
            for (i64 e = offsets[node]; e < offsets[node + 1]; e++) {
                i64 nb = neighbors[e];
                if (seen[nb] != generation) {
                    seen[nb] = generation;
                    pred[nb] = node;
                    next_frontier[nsize++] = nb;
                }
            }
        }
        if (stop)
            break;
        i64 *swap = frontier;
        frontier = next_frontier;
        next_frontier = swap;
        fsize = nsize;
        level += 1.0;
    }
    return settled;
}

/* ------------------------------------------------------------ slab helpers
 *
 * Small flat-array passes used by the slab-direct substrate build: they move
 * kernel results (scratch-arena rows, settle orders) into SubstrateTables
 * slabs without boxing each element through a Python object.  All of them
 * have pure-Python fallbacks in repro.graphs.csr / repro.core.landmarks.
 */

/* dst[i] = src[idx[i]] -- extract a settle-ordered row from an arena. */
void gather_f64(const i64 *idx, const double *src, double *dst, i64 count)
{
    for (i64 i = 0; i < count; i++)
        dst[i] = src[idx[i]];
}

void gather_i64(const i64 *idx, const i64 *src, i64 *dst, i64 count)
{
    for (i64 i = 0; i < count; i++)
        dst[i] = src[idx[i]];
}

/* One ascending-landmark step of the closest-landmark sweep.  best_dist is
 * initialised to +inf, landmarks are processed in ascending id order, and
 * the strict < keeps equal-distance ties on the smaller landmark id --
 * exactly the reference semantics of repro.core.landmarks.closest_landmarks.
 */
void closest_update(i64 n, const double *dist, i64 landmark,
                    double *best_dist, i64 *best_landmark)
{
    for (i64 v = 0; v < n; v++) {
        if (dist[v] < best_dist[v]) {
            best_dist[v] = dist[v];
            best_landmark[v] = landmark;
        }
    }
}

/* counts[src[i]] += 1 for every i -- S4 cluster sizes over a flat members
 * slab.  Values must already be bounds-checked by the caller. */
void bincount_i64(const i64 *src, i64 count, i64 *counts)
{
    for (i64 i = 0; i < count; i++)
        counts[src[i]]++;
}

/* ------------------------------------------------------- ingestion helpers
 *
 * Used by the streaming topology ingestion (repro.graphs.ingest) to turn
 * flat canonical edge arrays into CSR slabs without materializing a Python
 * object per edge.  Pure-Python fallbacks live next to the callers.
 */

/* Scatter canonical undirected edges into CSR arc slabs.  Edge j places its
 * two directed arcs at cursor[eu[j]]++ and cursor[ev[j]]++, reproducing the
 * arc order of CSRGraph.from_topology over a dict Topology whose add_edge
 * calls arrived in the same edge order (each new edge appends one arc to
 * both endpoint rows).  cursor must start as a copy of offsets[0..n-1]. */
void csr_fill(i64 num_edges,
              const i64 *eu, const i64 *ev, const double *ew,
              i64 *cursor, i64 *nbrs, double *wts)
{
    for (i64 j = 0; j < num_edges; j++) {
        i64 u = eu[j], v = ev[j];
        double w = ew[j];
        i64 p = cursor[u]++;
        nbrs[p] = v;
        wts[p] = w;
        p = cursor[v]++;
        nbrs[p] = u;
        wts[p] = w;
    }
}

/* Collapse duplicate canonical edges in arrival order, keeping the first
 * occurrence with the minimum weight over all occurrences -- exactly
 * Topology.add_edge's duplicate policy.  eu/ev hold canonical endpoints
 * (eu[j] < ev[j]); the three arrays are compacted in place and the deduped
 * edge count is returned.  Scratch: group (n + 1 slots), eorder (m slots),
 * stamp and firstj (n slots each); all are overwritten.
 *
 * The pass groups edges by their lo endpoint with a stable counting sort,
 * so one n-slot stamp array distinguishes (lo, hi) pairs: within lo's
 * group, stamp[hi] == lo + 1 marks an already-seen pair and firstj[hi]
 * remembers its first (arrival-order) edge index. */
i64 dedup_edges(i64 m, i64 n,
                i64 *eu, i64 *ev, double *ew,
                i64 *group, i64 *eorder, i64 *stamp, i64 *firstj)
{
    if (m <= 0)
        return m;
    memset(group, 0, sizeof(i64) * (size_t)(n + 1));
    for (i64 j = 0; j < m; j++)
        group[eu[j] + 1]++;
    for (i64 u = 0; u < n; u++)
        group[u + 1] += group[u];
    for (i64 j = 0; j < m; j++)
        eorder[group[eu[j]]++] = j;
    memset(stamp, 0, sizeof(i64) * (size_t)n);
    i64 dropped = 0;
    for (i64 p = 0; p < m; p++) {
        i64 j = eorder[p];
        i64 lo = eu[j], hi = ev[j];
        if (stamp[hi] == lo + 1) {
            i64 f = firstj[hi];
            if (ew[j] < ew[f])
                ew[f] = ew[j];
            eu[j] = -1; /* dropped; compacted out below */
            dropped++;
        } else {
            stamp[hi] = lo + 1;
            firstj[hi] = j;
        }
    }
    if (!dropped)
        return m;
    i64 w = 0;
    for (i64 j = 0; j < m; j++) {
        if (eu[j] >= 0) {
            if (w != j) {
                eu[w] = eu[j];
                ev[w] = ev[j];
                ew[w] = ew[j];
            }
            w++;
        }
    }
    return w;
}

/* ------------------------------------------------------------- batch layer
 *
 * Batched entry points: one FFI call runs a whole phase of the substrate
 * build (all landmark SPTs, all vicinity searches, ...) with the source
 * loop inside C, optionally fanned out over POSIX threads.  Determinism is
 * structural, not synchronized:
 *
 *   - sources partition into contiguous chunks (ceil-sized, ascending),
 *     one chunk per thread, exactly like the Python-side _chunks helper;
 *   - each source owns a disjoint destination row (spt_rows_batch,
 *     k_nearest_batch, target_distances_batch), or each chunk grows a
 *     private buffer that the main thread concatenates in chunk order
 *     after the join (radius_batch) -- the same task-order merge as the
 *     multiprocessing pool;
 *   - the closest-landmark fold keeps per-thread partial rows over each
 *     (ascending) chunk and merges them in chunk order with the same
 *     strict < as the serial ascending fold, which resolves every
 *     equal-distance tie to the smallest landmark id either way.
 *
 * So any thread count produces byte-identical output, with no locks in
 * the search path.  Every thread owns a full scratch arena (dist / pred /
 * seen / order plus the active kernel's queue state), malloc'd per call;
 * the searches themselves are the unmodified kernels above, which touch
 * only their arguments.  Entry points return -1 on allocation failure so
 * the Python driver can fall back to its serial loop.
 */

#define KERNEL_HEAP 0
#define KERNEL_DIAL 1
#define KERNEL_BFS 2

typedef struct {
    /* graph + kernel selection, shared read-only across threads */
    i64 n;
    const i64 *offsets;
    const i64 *neighbors;
    const double *weights;
    i64 kernel;
    double quantum;
    i64 num_slots;
    i64 num_arcs;
    const i64 *sources;
    /* spt_rows_batch */
    double *dist_out;
    i64 *parent_out;
    double fill;
    int fold;
    /* k_nearest_batch / radius_batch */
    i64 k;
    i64 cap;
    i64 *members;
    double *dists;
    i64 *parents;
    i64 *counts;
    const double *radii;
    i64 radius_mode;
    /* target_distances_batch */
    const i64 *tgt_offsets;
    const i64 *tgt_nodes;
    double *tdist_out;
} batch_shared;

typedef struct {
    const batch_shared *shared;
    i64 begin, end;              /* source-index range [begin, end) */
    double *pb_dist;             /* closest-fold partials (spt mode) */
    i64 *pb_landmark;
    i64 *rm;                     /* growable chunk rows (radius mode) */
    double *rd;
    i64 *rp;
    i64 rcount, rcap;
    i64 fail_index;              /* first unreachable flat target, -1: none */
    int failed;                  /* allocation failure inside the thread */
} batch_task;

typedef struct {
    double *dist;
    i64 *pred;
    i64 *seen;                   /* calloc'd: generations start at 1 */
    i64 *order;
    unsigned char *tflag;
    i64 *heap, *pos;             /* heap kernel */
    i64 *head, *pool_node, *pool_next, *batch;  /* dial kernel */
    i64 *frontier, *next_frontier;              /* bfs kernel */
    i64 generation;
} batch_arena;

static void arena_release(batch_arena *a)
{
    free(a->dist); free(a->pred); free(a->seen); free(a->order);
    free(a->tflag);
    free(a->heap); free(a->pos);
    free(a->head); free(a->pool_node); free(a->pool_next); free(a->batch);
    free(a->frontier); free(a->next_frontier);
}

static int arena_setup(batch_arena *a, const batch_shared *s)
{
    i64 n = s->n;
    memset(a, 0, sizeof(*a));
    a->dist = malloc(sizeof(double) * (size_t)n);
    a->pred = malloc(sizeof(i64) * (size_t)n);
    a->seen = calloc((size_t)n, sizeof(i64));
    a->order = malloc(sizeof(i64) * (size_t)n);
    a->tflag = malloc((size_t)(n > 0 ? n : 1));
    int ok = a->dist && a->pred && a->seen && a->order && a->tflag;
    if (ok && s->kernel == KERNEL_DIAL) {
        a->head = malloc(sizeof(i64) * (size_t)s->num_slots);
        a->pool_node = malloc(sizeof(i64) * (size_t)(s->num_arcs + 1));
        a->pool_next = malloc(sizeof(i64) * (size_t)(s->num_arcs + 1));
        a->batch = malloc(sizeof(i64) * (size_t)n);
        ok = a->head && a->pool_node && a->pool_next && a->batch;
    } else if (ok && s->kernel == KERNEL_BFS) {
        a->frontier = malloc(sizeof(i64) * (size_t)n);
        a->next_frontier = malloc(sizeof(i64) * (size_t)n);
        ok = a->frontier && a->next_frontier;
    } else if (ok) {
        a->heap = malloc(sizeof(i64) * (size_t)n);
        a->pos = malloc(sizeof(i64) * (size_t)n);
        ok = a->heap && a->pos;
    }
    if (!ok) {
        arena_release(a);
        return -1;
    }
    return 0;
}

static i64 arena_search(batch_arena *a, const batch_shared *s, i64 source,
                        i64 k, double radius, i64 radius_mode,
                        const i64 *targets, i64 num_targets)
{
    a->generation++;
    if (s->kernel == KERNEL_BFS)
        return spt_bfs(s->n, s->offsets, s->neighbors, source,
                       a->dist, a->pred, a->seen, a->generation, a->order,
                       a->frontier, a->next_frontier,
                       k, radius, radius_mode, targets, num_targets,
                       a->tflag);
    if (s->kernel == KERNEL_DIAL)
        return spt_dial(s->n, s->offsets, s->neighbors, s->weights, source,
                        a->dist, a->pred, a->seen, a->generation, a->order,
                        s->quantum, s->num_slots,
                        a->head, a->pool_node, a->pool_next, a->batch,
                        k, radius, radius_mode, targets, num_targets,
                        a->tflag);
    return spt_heap4(s->n, s->offsets, s->neighbors, s->weights, source,
                     a->dist, a->pred, a->seen, a->generation, a->order,
                     a->heap, a->pos,
                     k, radius, radius_mode, targets, num_targets, a->tflag);
}

/* Contiguous ceil-sized chunks over the source indices, one task each;
 * mirrors the Python-side _chunks partition so the process-pool merge and
 * the in-kernel merge see the same boundaries.  Returns the task count. */
static i64 batch_tasks(batch_task *tasks, const batch_shared *shared,
                       i64 num_sources, i64 threads)
{
    i64 count = threads < 1 ? 1 : threads;
    if (count > num_sources)
        count = num_sources;
    i64 size = (num_sources + count - 1) / count;
    count = (num_sources + size - 1) / size;
    for (i64 t = 0; t < count; t++) {
        memset(&tasks[t], 0, sizeof(batch_task));
        tasks[t].shared = shared;
        tasks[t].begin = t * size;
        tasks[t].end = (t + 1) * size;
        if (tasks[t].end > num_sources)
            tasks[t].end = num_sources;
        tasks[t].fail_index = -1;
    }
    return count;
}

/* Run one task per thread (the calling thread takes task 0) and join.
 * A failed pthread_create degrades to running that task inline. */
static void batch_run(batch_task *tasks, i64 count, void *(*fn)(void *))
{
    if (count <= 1) {
        if (count == 1)
            fn(&tasks[0]);
        return;
    }
    pthread_t *tids = malloc(sizeof(pthread_t) * (size_t)(count - 1));
    unsigned char *live = calloc((size_t)(count - 1), 1);
    if (!tids || !live) {
        free(tids);
        free(live);
        for (i64 t = 0; t < count; t++)
            fn(&tasks[t]);
        return;
    }
    for (i64 t = 1; t < count; t++) {
        if (pthread_create(&tids[t - 1], NULL, fn, &tasks[t]) == 0)
            live[t - 1] = 1;
        else
            fn(&tasks[t]);
    }
    fn(&tasks[0]);
    for (i64 t = 1; t < count; t++)
        if (live[t - 1])
            pthread_join(tids[t - 1], NULL);
    free(tids);
    free(live);
}

static void *spt_rows_worker(void *arg)
{
    batch_task *task = arg;
    const batch_shared *s = task->shared;
    i64 n = s->n;
    batch_arena arena;
    if (arena_setup(&arena, s)) {
        task->failed = 1;
        return NULL;
    }
    if (s->fold) {
        task->pb_dist = malloc(sizeof(double) * (size_t)n);
        task->pb_landmark = malloc(sizeof(i64) * (size_t)n);
        if (!task->pb_dist || !task->pb_landmark) {
            task->failed = 1;
            arena_release(&arena);
            return NULL;
        }
        for (i64 v = 0; v < n; v++) {
            task->pb_dist[v] = INFINITY;
            task->pb_landmark[v] = -1;
        }
    }
    for (i64 i = task->begin; i < task->end; i++) {
        i64 source = s->sources[i];
        arena_search(&arena, s, source, 0, -1.0, RADIUS_NONE, NULL, 0);
        double *row = s->dist_out + i * n;
        i64 *prow = s->parent_out + i * n;
        i64 generation = arena.generation;
        for (i64 v = 0; v < n; v++) {
            if (arena.seen[v] == generation) {
                row[v] = arena.dist[v];
                prow[v] = arena.pred[v];
            } else {
                /* Unreached: the fill contract of spt_rows_into. */
                row[v] = s->fill;
                prow[v] = -1;
            }
        }
        if (s->fold) {
            /* Fold the *filled* row, matching the serial path, which
             * folds each slab row after the fill repair. */
            for (i64 v = 0; v < n; v++) {
                if (row[v] < task->pb_dist[v]) {
                    task->pb_dist[v] = row[v];
                    task->pb_landmark[v] = source;
                }
            }
        }
    }
    arena_release(&arena);
    return NULL;
}

/* Dense SPT rows for num_sources sources: row i of dist_out / parent_out
 * (length n each) belongs to sources[i].  When best_dist / best_landmark
 * are non-NULL (n slots, seeded +inf / -1 by the caller), the closest-
 * landmark fold runs in the same pass.  Returns 0, or -1 on allocation
 * failure (outputs are then unspecified; the caller falls back). */
i64 spt_rows_batch(
    i64 n,
    const i64 *offsets, const i64 *neighbors, const double *weights,
    i64 kernel, double quantum, i64 num_slots,
    const i64 *sources, i64 num_sources,
    double *dist_out, i64 *parent_out, double fill,
    double *best_dist, i64 *best_landmark,
    i64 threads)
{
    if (num_sources <= 0)
        return 0;
    batch_shared shared;
    memset(&shared, 0, sizeof(shared));
    shared.n = n;
    shared.offsets = offsets;
    shared.neighbors = neighbors;
    shared.weights = weights;
    shared.kernel = kernel;
    shared.quantum = quantum;
    shared.num_slots = num_slots;
    shared.num_arcs = offsets[n];
    shared.sources = sources;
    shared.dist_out = dist_out;
    shared.parent_out = parent_out;
    shared.fill = fill;
    shared.fold = best_dist != NULL && best_landmark != NULL;
    i64 max_tasks = threads < 1 ? 1 : threads;
    batch_task *tasks = malloc(sizeof(batch_task) * (size_t)max_tasks);
    if (!tasks)
        return -1;
    i64 count = batch_tasks(tasks, &shared, num_sources, threads);
    batch_run(tasks, count, spt_rows_worker);
    int failed = 0;
    for (i64 t = 0; t < count; t++)
        if (tasks[t].failed)
            failed = 1;
    if (!failed && shared.fold) {
        /* Merge the per-chunk partials in chunk order: chunks ascend in
         * source order and the strict < keeps the first (smallest-id)
         * winner, so this is the serial ascending fold exactly. */
        for (i64 t = 0; t < count; t++) {
            for (i64 v = 0; v < n; v++) {
                if (tasks[t].pb_dist[v] < best_dist[v]) {
                    best_dist[v] = tasks[t].pb_dist[v];
                    best_landmark[v] = tasks[t].pb_landmark[v];
                }
            }
        }
    }
    for (i64 t = 0; t < count; t++) {
        free(tasks[t].pb_dist);
        free(tasks[t].pb_landmark);
    }
    free(tasks);
    return failed ? -1 : 0;
}

static void *k_nearest_worker(void *arg)
{
    batch_task *task = arg;
    const batch_shared *s = task->shared;
    batch_arena arena;
    if (arena_setup(&arena, s)) {
        task->failed = 1;
        return NULL;
    }
    for (i64 i = task->begin; i < task->end; i++) {
        i64 count = arena_search(&arena, s, s->sources[i], s->k, -1.0,
                                 RADIUS_NONE, NULL, 0);
        i64 base = i * s->cap;
        for (i64 j = 0; j < count; j++) {
            i64 node = arena.order[j];
            s->members[base + j] = node;
            s->dists[base + j] = arena.dist[node];
            s->parents[base + j] = arena.pred[node];
        }
        s->counts[i] = count;
    }
    arena_release(&arena);
    return NULL;
}

/* Truncated k-nearest rows for num_sources sources.  members / dists /
 * parents must hold num_sources * min(k, n) entries; source i's row is
 * written provisionally at i * min(k, n) and the rows are compacted left
 * serially after the join (a no-op on connected graphs, where every row
 * fills).  row_ends[i] receives the cumulative end position of row i.
 * Returns the total fill, or -1 on allocation failure. */
i64 k_nearest_batch(
    i64 n,
    const i64 *offsets, const i64 *neighbors, const double *weights,
    i64 kernel, double quantum, i64 num_slots,
    const i64 *sources, i64 num_sources, i64 k,
    i64 *members, double *dists, i64 *parents,
    i64 *row_ends,
    i64 threads)
{
    if (num_sources <= 0)
        return 0;
    batch_shared shared;
    memset(&shared, 0, sizeof(shared));
    shared.n = n;
    shared.offsets = offsets;
    shared.neighbors = neighbors;
    shared.weights = weights;
    shared.kernel = kernel;
    shared.quantum = quantum;
    shared.num_slots = num_slots;
    shared.num_arcs = offsets[n];
    shared.sources = sources;
    shared.k = k;
    shared.cap = k < n ? k : n;
    shared.members = members;
    shared.dists = dists;
    shared.parents = parents;
    shared.counts = row_ends;
    i64 max_tasks = threads < 1 ? 1 : threads;
    batch_task *tasks = malloc(sizeof(batch_task) * (size_t)max_tasks);
    if (!tasks)
        return -1;
    i64 count = batch_tasks(tasks, &shared, num_sources, threads);
    batch_run(tasks, count, k_nearest_worker);
    int failed = 0;
    for (i64 t = 0; t < count; t++)
        if (tasks[t].failed)
            failed = 1;
    free(tasks);
    if (failed)
        return -1;
    i64 position = 0;
    for (i64 i = 0; i < num_sources; i++) {
        i64 row = row_ends[i];
        i64 base = i * shared.cap;
        if (position != base && row > 0) {
            memmove(members + position, members + base,
                    sizeof(i64) * (size_t)row);
            memmove(dists + position, dists + base,
                    sizeof(double) * (size_t)row);
            memmove(parents + position, parents + base,
                    sizeof(i64) * (size_t)row);
        }
        position += row;
        row_ends[i] = position;
    }
    return position;
}

static int radius_reserve(batch_task *task, i64 extra)
{
    if (task->rcount + extra <= task->rcap)
        return 0;
    i64 cap = task->rcap ? task->rcap : 1024;
    while (cap < task->rcount + extra)
        cap *= 2;
    i64 *rm = realloc(task->rm, sizeof(i64) * (size_t)cap);
    if (rm)
        task->rm = rm;
    double *rd = realloc(task->rd, sizeof(double) * (size_t)cap);
    if (rd)
        task->rd = rd;
    i64 *rp = realloc(task->rp, sizeof(i64) * (size_t)cap);
    if (rp)
        task->rp = rp;
    if (!rm || !rd || !rp)
        return -1;
    task->rcap = cap;
    return 0;
}

static void *radius_worker(void *arg)
{
    batch_task *task = arg;
    const batch_shared *s = task->shared;
    batch_arena arena;
    if (arena_setup(&arena, s)) {
        task->failed = 1;
        return NULL;
    }
    for (i64 i = task->begin; i < task->end; i++) {
        i64 count = arena_search(&arena, s, s->sources[i], 0, s->radii[i],
                                 s->radius_mode, NULL, 0);
        if (radius_reserve(task, count)) {
            task->failed = 1;
            break;
        }
        for (i64 j = 0; j < count; j++) {
            i64 node = arena.order[j];
            task->rm[task->rcount] = node;
            task->rd[task->rcount] = arena.dist[node];
            task->rp[task->rcount] = arena.pred[node];
            task->rcount++;
        }
        s->counts[i] = count;
    }
    arena_release(&arena);
    return NULL;
}

/* Radius-bounded rows (radii[i] bounds sources[i]; radius_mode is
 * RADIUS_STRICT or RADIUS_INCLUSIVE).  Row sizes are unknown upfront, so
 * each chunk grows a private buffer and the main thread concatenates them
 * in chunk order after the join into freshly malloc'd arrays returned via
 * the out pointers (release with buffer_free).  row_ends[i] receives the
 * cumulative end of row i.  Returns the total entry count, or -1 on
 * allocation failure (out pointers are then untouched). */
i64 radius_batch(
    i64 n,
    const i64 *offsets, const i64 *neighbors, const double *weights,
    i64 kernel, double quantum, i64 num_slots,
    const i64 *sources, i64 num_sources,
    const double *radii, i64 radius_mode,
    i64 *row_ends,
    i64 **out_members, double **out_dists, i64 **out_parents,
    i64 threads)
{
    if (num_sources <= 0) {
        *out_members = malloc(sizeof(i64));
        *out_dists = malloc(sizeof(double));
        *out_parents = malloc(sizeof(i64));
        return (*out_members && *out_dists && *out_parents) ? 0 : -1;
    }
    batch_shared shared;
    memset(&shared, 0, sizeof(shared));
    shared.n = n;
    shared.offsets = offsets;
    shared.neighbors = neighbors;
    shared.weights = weights;
    shared.kernel = kernel;
    shared.quantum = quantum;
    shared.num_slots = num_slots;
    shared.num_arcs = offsets[n];
    shared.sources = sources;
    shared.radii = radii;
    shared.radius_mode = radius_mode;
    shared.counts = row_ends;
    i64 max_tasks = threads < 1 ? 1 : threads;
    batch_task *tasks = malloc(sizeof(batch_task) * (size_t)max_tasks);
    if (!tasks)
        return -1;
    i64 count = batch_tasks(tasks, &shared, num_sources, threads);
    batch_run(tasks, count, radius_worker);
    int failed = 0;
    i64 total = 0;
    for (i64 t = 0; t < count; t++) {
        if (tasks[t].failed)
            failed = 1;
        total += tasks[t].rcount;
    }
    i64 *members = NULL;
    double *dists = NULL;
    i64 *parents = NULL;
    if (!failed) {
        members = malloc(sizeof(i64) * (size_t)(total ? total : 1));
        dists = malloc(sizeof(double) * (size_t)(total ? total : 1));
        parents = malloc(sizeof(i64) * (size_t)(total ? total : 1));
        if (!members || !dists || !parents)
            failed = 1;
    }
    i64 position = 0;
    for (i64 t = 0; t < count; t++) {
        if (!failed && tasks[t].rcount) {
            memcpy(members + position, tasks[t].rm,
                   sizeof(i64) * (size_t)tasks[t].rcount);
            memcpy(dists + position, tasks[t].rd,
                   sizeof(double) * (size_t)tasks[t].rcount);
            memcpy(parents + position, tasks[t].rp,
                   sizeof(i64) * (size_t)tasks[t].rcount);
            position += tasks[t].rcount;
        }
        free(tasks[t].rm);
        free(tasks[t].rd);
        free(tasks[t].rp);
    }
    free(tasks);
    if (failed) {
        free(members);
        free(dists);
        free(parents);
        return -1;
    }
    for (i64 i = 0; i < num_sources; i++)
        row_ends[i] += i ? row_ends[i - 1] : 0;
    *out_members = members;
    *out_dists = dists;
    *out_parents = parents;
    return total;
}

void buffer_free(void *ptr)
{
    free(ptr);
}

static void *target_distances_worker(void *arg)
{
    batch_task *task = arg;
    const batch_shared *s = task->shared;
    batch_arena arena;
    if (arena_setup(&arena, s)) {
        task->failed = 1;
        return NULL;
    }
    for (i64 i = task->begin; i < task->end && task->fail_index < 0; i++) {
        i64 source = s->sources[i];
        i64 t0 = s->tgt_offsets[i], t1 = s->tgt_offsets[i + 1];
        arena_search(&arena, s, source, 0, -1.0, RADIUS_NONE,
                     s->tgt_nodes + t0, t1 - t0);
        i64 generation = arena.generation;
        for (i64 t = t0; t < t1; t++) {
            i64 node = s->tgt_nodes[t];
            /* A target settled iff it was stamped: early stop requires
             * every target settled, and at exhaustion every discovered
             * node is settled -- same invariant as the serial driver. */
            if (arena.seen[node] != generation) {
                task->fail_index = t;
                break;
            }
            s->tdist_out[t] = arena.dist[node];
        }
    }
    arena_release(&arena);
    return NULL;
}

/* Early-stopping distance extraction: source i settles until the targets
 * tgt_nodes[tgt_offsets[i] .. tgt_offsets[i+1]) are reached, writing
 * their distances into the aligned dist_out slots.  Returns 0 on success,
 * -1 on allocation failure, and -(flat_index + 2) when a target is
 * unreachable (flat_index is the smallest failing tgt_nodes position, so
 * the Python driver can name the pair in its error). */
i64 target_distances_batch(
    i64 n,
    const i64 *offsets, const i64 *neighbors, const double *weights,
    i64 kernel, double quantum, i64 num_slots,
    const i64 *sources, i64 num_sources,
    const i64 *tgt_offsets, const i64 *tgt_nodes,
    double *dist_out,
    i64 threads)
{
    if (num_sources <= 0)
        return 0;
    batch_shared shared;
    memset(&shared, 0, sizeof(shared));
    shared.n = n;
    shared.offsets = offsets;
    shared.neighbors = neighbors;
    shared.weights = weights;
    shared.kernel = kernel;
    shared.quantum = quantum;
    shared.num_slots = num_slots;
    shared.num_arcs = offsets[n];
    shared.sources = sources;
    shared.tgt_offsets = tgt_offsets;
    shared.tgt_nodes = tgt_nodes;
    shared.tdist_out = dist_out;
    i64 max_tasks = threads < 1 ? 1 : threads;
    batch_task *tasks = malloc(sizeof(batch_task) * (size_t)max_tasks);
    if (!tasks)
        return -1;
    i64 count = batch_tasks(tasks, &shared, num_sources, threads);
    batch_run(tasks, count, target_distances_worker);
    int failed = 0;
    i64 fail_index = -1;
    for (i64 t = 0; t < count; t++) {
        if (tasks[t].failed)
            failed = 1;
        if (tasks[t].fail_index >= 0 &&
            (fail_index < 0 || tasks[t].fail_index < fail_index))
            fail_index = tasks[t].fail_index;
    }
    free(tasks);
    if (failed)
        return -1;
    if (fail_index >= 0)
        return -(fail_index + 2);
    return 0;
}
