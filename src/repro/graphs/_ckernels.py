"""On-demand compiler/loader for the C shortest-path kernels.

``_kernels.c`` (shipped next to this module) implements the indexed 4-ary
heap, the Dial bucket queue, and the unit-weight level-ordered BFS at C
speed.  This module compiles it with the
system C compiler the first time it is needed and memoizes the loaded
``ctypes`` library; everything degrades gracefully:

* no compiler, a failed compile, or a failed load -> :func:`load_kernels`
  returns ``None`` and :mod:`repro.graphs.csr` silently uses its pure-Python
  kernels (bit-identical results, just slower);
* ``REPRO_NO_CKERNELS=1`` in the environment forces the pure-Python tier
  (used by the test suite to cover both tiers);
* the shared object is cached under ``_build/`` beside this file (keyed by a
  hash of the C source), falling back to a per-user temp directory when the
  package directory is not writable.

The build is a single translation unit with no Python.h dependency, so it
needs only a C compiler, not Python development headers.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import sys
import tempfile

__all__ = ["load_kernels", "build_error", "warn_if_unavailable"]

_SOURCE = os.path.join(os.path.dirname(os.path.abspath(__file__)), "_kernels.c")

_lib: ctypes.CDLL | None = None
_attempted = False
_build_error: str | None = None

_I64 = ctypes.c_int64
_PI64 = ctypes.POINTER(ctypes.c_int64)
_PDBL = ctypes.POINTER(ctypes.c_double)
_PU8 = ctypes.POINTER(ctypes.c_ubyte)

_HEAP4_ARGTYPES = [
    _I64,                    # n
    _PI64, _PI64, _PDBL,     # offsets, neighbors, weights
    _I64,                    # source
    _PDBL, _PI64, _PI64, _I64,  # dist, pred, seen, generation
    _PI64,                   # order
    _PI64, _PI64,            # heap, pos
    _I64,                    # k
    ctypes.c_double, _I64,   # radius, radius_mode
    _PI64, _I64, _PU8,       # targets, num_targets, tflag
]

_DIAL_ARGTYPES = [
    _I64,
    _PI64, _PI64, _PDBL,
    _I64,
    _PDBL, _PI64, _PI64, _I64,
    _PI64,
    ctypes.c_double, _I64,   # quantum, num_slots
    _PI64,                   # head
    _PI64, _PI64,            # pool_node, pool_next
    _PI64,                   # batch
    _I64,
    ctypes.c_double, _I64,
    _PI64, _I64, _PU8,
]

_BFS_ARGTYPES = [
    _I64,                    # n
    _PI64, _PI64,            # offsets, neighbors (no weights: unit graphs)
    _I64,                    # source
    _PDBL, _PI64, _PI64, _I64,  # dist, pred, seen, generation
    _PI64,                   # order
    _PI64, _PI64,            # frontier, next_frontier
    _I64,                    # k
    ctypes.c_double, _I64,   # radius, radius_mode
    _PI64, _I64, _PU8,       # targets, num_targets, tflag
]

# The batched entry points share a common prefix: graph slabs, kernel
# selector (0 heap / 1 dial / 2 bfs) with the dial parameters, and the
# source array.  Each thread builds its own scratch arena in C, so none of
# the per-search arena pointers appear here.
_BATCH_COMMON = [
    _I64,                    # n
    _PI64, _PI64, _PDBL,     # offsets, neighbors, weights
    _I64,                    # kernel id
    ctypes.c_double, _I64,   # quantum, num_slots
    _PI64, _I64,             # sources, num_sources
]

_SPT_BATCH_ARGTYPES = _BATCH_COMMON + [
    _PDBL, _PI64,            # dist_out, parent_out (num_sources * n rows)
    ctypes.c_double,         # fill
    _PDBL, _PI64,            # best_dist, best_landmark (NULL: no fold)
    _I64,                    # threads
]

_KNEAREST_BATCH_ARGTYPES = _BATCH_COMMON + [
    _I64,                    # k
    _PI64, _PDBL, _PI64,     # members, dists, parents
    _PI64,                   # row_ends
    _I64,                    # threads
]

_RADIUS_BATCH_ARGTYPES = _BATCH_COMMON + [
    _PDBL, _I64,             # radii, radius_mode
    _PI64,                   # row_ends
    ctypes.POINTER(_PI64), ctypes.POINTER(_PDBL), ctypes.POINTER(_PI64),
    _I64,                    # threads
]

_TARGET_BATCH_ARGTYPES = _BATCH_COMMON + [
    _PI64, _PI64,            # tgt_offsets, tgt_nodes
    _PDBL,                   # dist_out (aligned with tgt_nodes)
    _I64,                    # threads
]


def _compiler() -> str | None:
    for name in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if name and shutil.which(name):
            return name
    return None


def _build_dir() -> str:
    """A writable cache directory for the compiled shared object."""
    override = os.environ.get("REPRO_KERNEL_CACHE")
    if override:
        return override
    return os.path.join(os.path.dirname(_SOURCE), "_build")


def _compile(source_path: str) -> str | None:
    """Compile ``_kernels.c``; return the cached .so path or ``None``."""
    global _build_error
    cc = _compiler()
    if cc is None:
        _build_error = "no C compiler found (cc/gcc/clang)"
        return None
    # REPRO_KERNEL_CFLAGS appends extra flags (e.g. -fsanitize=thread for
    # the CI data-race leg); they join the cache key so instrumented and
    # plain builds never collide.
    extra_flags = os.environ.get("REPRO_KERNEL_CFLAGS", "").split()
    with open(source_path, "rb") as handle:
        hasher = hashlib.sha256(handle.read())
    hasher.update(" ".join(extra_flags).encode())
    digest = hasher.hexdigest()[:16]
    tag = f"_kernels-{digest}-{sys.implementation.cache_tag}.so"
    for directory in (_build_dir(), tempfile.gettempdir()):
        target = os.path.join(directory, tag)
        if os.path.exists(target):
            return target
        try:
            os.makedirs(directory, exist_ok=True)
            # Compile to a unique temp name, then atomically rename, so
            # concurrent builders (e.g. multiprocessing workers on a cold
            # cache) never load a half-written object.
            fd, scratch = tempfile.mkstemp(
                suffix=".so", prefix="_kernels-", dir=directory
            )
            os.close(fd)
            command = [
                cc, "-O3", "-fPIC", "-shared", "-pthread",
                *extra_flags,
                "-o", scratch, source_path,
            ]
            try:
                completed = subprocess.run(
                    command, capture_output=True, text=True, timeout=120
                )
            except subprocess.SubprocessError as error:
                # Covers a hung or crashing compiler (TimeoutExpired etc.):
                # degrade to the pure-Python tier instead of propagating.
                os.unlink(scratch)
                _build_error = f"{cc} failed: {error}"
                return None
            if completed.returncode != 0:
                os.unlink(scratch)
                _build_error = (
                    f"{cc} failed: {completed.stderr.strip()[:500]}"
                )
                return None
            os.replace(scratch, target)
            return target
        except OSError as error:
            _build_error = f"build failed in {directory}: {error}"
            continue
    return None


def load_kernels() -> ctypes.CDLL | None:
    """Return the compiled kernel library, building it on first use.

    Memoized (including negative results); returns ``None`` whenever the C
    tier is unavailable or disabled via ``REPRO_NO_CKERNELS=1``.
    """
    global _lib, _attempted, _build_error
    if os.environ.get("REPRO_NO_CKERNELS"):
        return None
    if _attempted:
        return _lib
    _attempted = True
    try:
        if not os.path.exists(_SOURCE):
            _build_error = f"missing source {_SOURCE}"
            return None
        so_path = _compile(_SOURCE)
        if so_path is None:
            return None
        lib = ctypes.CDLL(so_path)
        lib.spt_heap4.restype = _I64
        lib.spt_heap4.argtypes = _HEAP4_ARGTYPES
        lib.spt_dial.restype = _I64
        lib.spt_dial.argtypes = _DIAL_ARGTYPES
        lib.spt_bfs.restype = _I64
        lib.spt_bfs.argtypes = _BFS_ARGTYPES
        lib.gather_f64.restype = None
        lib.gather_f64.argtypes = [_PI64, _PDBL, _PDBL, _I64]
        lib.gather_i64.restype = None
        lib.gather_i64.argtypes = [_PI64, _PI64, _PI64, _I64]
        lib.closest_update.restype = None
        lib.closest_update.argtypes = [_I64, _PDBL, _I64, _PDBL, _PI64]
        lib.bincount_i64.restype = None
        lib.bincount_i64.argtypes = [_PI64, _I64, _PI64]
        lib.csr_fill.restype = None
        lib.csr_fill.argtypes = [_I64, _PI64, _PI64, _PDBL, _PI64, _PI64, _PDBL]
        lib.dedup_edges.restype = _I64
        lib.dedup_edges.argtypes = [
            _I64, _I64, _PI64, _PI64, _PDBL, _PI64, _PI64, _PI64, _PI64,
        ]
        lib.spt_rows_batch.restype = _I64
        lib.spt_rows_batch.argtypes = _SPT_BATCH_ARGTYPES
        lib.k_nearest_batch.restype = _I64
        lib.k_nearest_batch.argtypes = _KNEAREST_BATCH_ARGTYPES
        lib.radius_batch.restype = _I64
        lib.radius_batch.argtypes = _RADIUS_BATCH_ARGTYPES
        lib.target_distances_batch.restype = _I64
        lib.target_distances_batch.argtypes = _TARGET_BATCH_ARGTYPES
        lib.buffer_free.restype = None
        lib.buffer_free.argtypes = [ctypes.c_void_p]
        _lib = lib
    except OSError as error:  # pragma: no cover - load failure is env-specific
        _build_error = f"load failed: {error}"
        _lib = None
    return _lib


def build_error() -> str | None:
    """Why the C tier is unavailable (``None`` when it loaded or not tried)."""
    return _build_error


_warned = False


def warn_if_unavailable(context: str) -> None:
    """One-line stderr warning when the C tier was asked for but is absent.

    Callers that *expect* the C kernels (the bench harness, a forced
    ``--kernel``) invoke this so a silently failed compile shows up as::

        warning: C kernel tier unavailable for <context>: <reason>; ...

    instead of quietly benchmarking the pure-Python fallback.  Warns at
    most once per process and stays silent when the Python tier was chosen
    deliberately via ``REPRO_NO_CKERNELS=1``.
    """
    global _warned
    if _warned or os.environ.get("REPRO_NO_CKERNELS"):
        return
    if load_kernels() is not None:
        return
    _warned = True
    reason = _build_error or "unknown build failure"
    print(
        f"warning: C kernel tier unavailable for {context}: {reason}; "
        "falling back to the pure-Python kernels (bit-identical, slower)",
        file=sys.stderr,
    )
