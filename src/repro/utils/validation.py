"""Uniform argument validation helpers.

Public API entry points in the library validate their inputs eagerly and
raise descriptive exceptions; these helpers keep the error messages uniform
and the call sites short.
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "require_positive",
    "require_in_range",
    "require_probability",
    "require_type",
]


def require_positive(name: str, value: float, *, allow_zero: bool = False) -> None:
    """Raise ``ValueError`` unless ``value`` is positive (or >= 0 if allowed)."""
    if allow_zero:
        if value < 0:
            raise ValueError(f"{name} must be >= 0, got {value!r}")
    elif value <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")


def require_in_range(
    name: str,
    value: float,
    low: float,
    high: float,
    *,
    inclusive: bool = True,
) -> None:
    """Raise ``ValueError`` unless ``low <= value <= high`` (or strict)."""
    if inclusive:
        if not low <= value <= high:
            raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")
    else:
        if not low < value < high:
            raise ValueError(f"{name} must be in ({low}, {high}), got {value!r}")


def require_probability(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value`` is a probability in [0, 1]."""
    require_in_range(name, value, 0.0, 1.0)


def require_type(name: str, value: Any, expected: type | tuple[type, ...]) -> None:
    """Raise ``TypeError`` unless ``value`` is an instance of ``expected``."""
    if not isinstance(value, expected):
        expected_names = (
            expected.__name__
            if isinstance(expected, type)
            else " or ".join(t.__name__ for t in expected)
        )
        raise TypeError(
            f"{name} must be {expected_names}, got {type(value).__name__}"
        )
