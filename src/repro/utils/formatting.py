"""Plain-text rendering of tables and CDFs for the experiment harness.

The paper's evaluation is a collection of figures (CDF plots) and tables.
Since this reproduction is library-first and runs headless, every experiment
renders its output as text: aligned tables for the tables, and a compact
textual CDF (value at selected percentiles) for the figures.  These renderers
keep that formatting consistent across all experiments and examples.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.utils.distributions import percentile

__all__ = ["format_table", "format_cdf", "human_bytes"]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    float_format: str = "{:.3f}",
) -> str:
    """Render ``rows`` under ``headers`` as an aligned, pipe-free text table.

    Floats are formatted with ``float_format``; everything else with ``str``.
    Column widths adapt to content.  Returns the table as a single string
    (no trailing newline).
    """
    rendered_rows: list[list[str]] = []
    for row in rows:
        rendered: list[str] = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(float_format.format(cell))
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)

    header_cells = [str(h) for h in headers]
    num_columns = len(header_cells)
    for row in rendered_rows:
        if len(row) != num_columns:
            raise ValueError(
                f"row has {len(row)} cells, expected {num_columns}: {row}"
            )

    widths = [len(cell) for cell in header_cells]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    lines = [render_line(header_cells)]
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(render_line(row) for row in rendered_rows)
    return "\n".join(lines)


def format_cdf(
    series: Mapping[str, Sequence[float]],
    *,
    quantiles: Sequence[float] = (10, 25, 50, 75, 90, 95, 99, 100),
    float_format: str = "{:.3f}",
) -> str:
    """Render one or more samples as a textual CDF comparison table.

    ``series`` maps a series label (e.g. protocol name) to its raw sample.
    The output has one row per series and one column per requested quantile,
    which is the text equivalent of the paper's CDF figures.
    """
    headers = ["series"] + [f"p{int(q) if float(q).is_integer() else q}" for q in quantiles]
    rows = []
    for label, values in series.items():
        if len(values) == 0:
            rows.append([label] + ["-"] * len(quantiles))
            continue
        rows.append([label] + [percentile(list(values), q) for q in quantiles])
    return format_table(headers, rows, float_format=float_format)


def human_bytes(num_bytes: float) -> str:
    """Render a byte count with an appropriate binary unit suffix."""
    value = float(num_bytes)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or unit == "TiB":
            if unit == "B":
                return f"{value:.0f} {unit}" if value.is_integer() else f"{value:.2f} {unit}"
            return f"{value:.2f} {unit}"
        value /= 1024.0
    raise AssertionError("unreachable")
