"""Deterministic random-number management.

Every stochastic component in the reproduction (topology generators, landmark
selection, overlay finger choice, workload sampling, error injection) takes an
explicit seed.  This module centralises how seeds are derived so that a single
top-level experiment seed fans out into independent, stable streams for each
component.

The scheme is simple and explicit: a *seed* plus a *tag* string are hashed
with SHA-256 and the first eight bytes are used as a 64-bit integer seed for
``random.Random``.  The hash guarantees that streams derived with different
tags are statistically independent, and that results are identical across
Python versions and platforms (unlike ``hash()`` which is salted).
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterator

__all__ = ["derive_seed", "make_rng", "SeedSequenceFactory"]


def derive_seed(seed: int, tag: str) -> int:
    """Derive a stable 64-bit child seed from ``seed`` and a ``tag``.

    Parameters
    ----------
    seed:
        The parent seed.  Any Python integer (negative values allowed).
    tag:
        A human-readable label identifying the consumer, e.g. ``"landmarks"``
        or ``"topology/gnm"``.

    Returns
    -------
    int
        A non-negative integer strictly below ``2**64``.
    """
    material = f"{seed}:{tag}".encode("utf-8")
    digest = hashlib.sha256(material).digest()
    return int.from_bytes(digest[:8], "big")


def make_rng(seed: int, tag: str = "") -> random.Random:
    """Return a ``random.Random`` seeded deterministically from seed + tag."""
    if tag:
        return random.Random(derive_seed(seed, tag))
    return random.Random(seed)


class SeedSequenceFactory:
    """Hands out deterministic child RNGs and seeds from one root seed.

    The factory keeps a counter per tag so repeated requests with the same
    tag yield *different but reproducible* streams, which is convenient when
    an experiment loops over repetitions::

        seeds = SeedSequenceFactory(42)
        for trial in range(5):
            rng = seeds.rng("trial")   # distinct stream per call
            ...
    """

    def __init__(self, root_seed: int) -> None:
        self._root_seed = int(root_seed)
        self._counters: dict[str, int] = {}

    @property
    def root_seed(self) -> int:
        """The root seed this factory was constructed with."""
        return self._root_seed

    def seed(self, tag: str) -> int:
        """Return the next derived integer seed for ``tag``."""
        count = self._counters.get(tag, 0)
        self._counters[tag] = count + 1
        return derive_seed(self._root_seed, f"{tag}#{count}")

    def rng(self, tag: str) -> random.Random:
        """Return the next derived ``random.Random`` for ``tag``."""
        return random.Random(self.seed(tag))

    def spawn(self, tag: str) -> "SeedSequenceFactory":
        """Return a child factory rooted at a derived seed."""
        return SeedSequenceFactory(self.seed(f"spawn/{tag}"))

    def stream(self, tag: str) -> Iterator[random.Random]:
        """Yield an endless sequence of independent RNGs for ``tag``."""
        while True:
            yield self.rng(tag)
