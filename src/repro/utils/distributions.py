"""Distribution summaries: percentiles, CDFs, and summary statistics.

The paper reports its results as CDFs over nodes / source-destination pairs /
edges, plus mean / max tables.  These helpers provide those computations in
one place so the metrics modules and the experiment reports agree exactly on
definitions (e.g. the percentile interpolation rule).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = ["Summary", "cdf_points", "percentile", "summarize"]


def percentile(values: Sequence[float], q: float) -> float:
    """Return the ``q``-th percentile of ``values`` (0 <= q <= 100).

    Uses linear interpolation between closest ranks (the same convention as
    ``numpy.percentile`` with the default "linear" method), implemented
    locally so the metrics layer does not require numpy for small inputs.

    Raises
    ------
    ValueError
        If ``values`` is empty or ``q`` is outside [0, 100].
    """
    if not values:
        raise ValueError("percentile() of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100.0) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high or ordered[low] == ordered[high]:
        return float(ordered[low])
    frac = rank - low
    return float(ordered[low] * (1.0 - frac) + ordered[high] * frac)


def cdf_points(values: Iterable[float]) -> list[tuple[float, float]]:
    """Return the empirical CDF of ``values`` as ``(value, fraction)`` pairs.

    The result is sorted by value; the fraction at each point is the share of
    samples less than or equal to that value.  Duplicate values are collapsed
    into a single point carrying the cumulative fraction, which matches how
    the paper's CDF plots are drawn.
    """
    ordered = sorted(values)
    if not ordered:
        return []
    total = len(ordered)
    points: list[tuple[float, float]] = []
    for index, value in enumerate(ordered, start=1):
        if points and points[-1][0] == value:
            points[-1] = (value, index / total)
        else:
            points.append((value, index / total))
    return points


@dataclass(frozen=True)
class Summary:
    """Summary statistics of a sample.

    Attributes
    ----------
    count:
        Number of samples.
    mean, minimum, maximum:
        The usual moments / extremes.
    median, p95, p99:
        Percentiles using linear interpolation.
    stdev:
        Population standard deviation (0.0 for a single sample).
    """

    count: int
    mean: float
    minimum: float
    maximum: float
    median: float
    p95: float
    p99: float
    stdev: float

    def as_dict(self) -> dict[str, float]:
        """Return the summary as a plain dict (useful for reporting)."""
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
            "median": self.median,
            "p95": self.p95,
            "p99": self.p99,
            "stdev": self.stdev,
        }


def summarize(values: Iterable[float]) -> Summary:
    """Compute a :class:`Summary` over ``values``.

    Raises
    ------
    ValueError
        If ``values`` is empty.
    """
    data = [float(v) for v in values]
    if not data:
        raise ValueError("summarize() of empty sequence")
    count = len(data)
    minimum = min(data)
    maximum = max(data)
    # Rounding in the running sum can push the raw mean marginally outside
    # [min, max] (e.g. mean([1.9, 1.9, 1.9]) == 1.8999999999999997); clamp so
    # the Summary invariants hold exactly.
    mean = min(max(sum(data) / count, minimum), maximum)
    variance = sum((v - mean) ** 2 for v in data) / count
    return Summary(
        count=count,
        mean=mean,
        minimum=minimum,
        maximum=maximum,
        median=percentile(data, 50.0),
        p95=percentile(data, 95.0),
        p99=percentile(data, 99.0),
        stdev=math.sqrt(variance),
    )
