"""Shared utilities used across the Disco reproduction.

This package holds small, dependency-free helpers:

* :mod:`repro.utils.randomness` -- deterministic RNG management so every
  experiment is reproducible from a single integer seed.
* :mod:`repro.utils.distributions` -- CDF / percentile / summary helpers used
  by the metrics and reporting layers.
* :mod:`repro.utils.formatting` -- plain-text table and CDF rendering used by
  the experiment harness to print paper-style rows.
* :mod:`repro.utils.validation` -- argument-validation helpers that raise
  uniform, descriptive errors.
"""

from repro.utils.distributions import (
    Summary,
    cdf_points,
    percentile,
    summarize,
)
from repro.utils.formatting import format_cdf, format_table, human_bytes
from repro.utils.randomness import SeedSequenceFactory, derive_seed, make_rng
from repro.utils.validation import (
    require_in_range,
    require_positive,
    require_probability,
    require_type,
)

__all__ = [
    "SeedSequenceFactory",
    "Summary",
    "cdf_points",
    "derive_seed",
    "format_cdf",
    "format_table",
    "human_bytes",
    "make_rng",
    "percentile",
    "require_in_range",
    "require_positive",
    "require_probability",
    "require_type",
    "summarize",
]
