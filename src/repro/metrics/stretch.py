"""Path-stretch measurement (Figs. 3, 4, 5, 6, 9).

Stretch is "the ratio of the protocol's route length to the shortest path
length" (§2).  For each sampled source-destination pair we obtain the
protocol's first-packet and later-packet routes, measure their weighted
length, and divide by the true shortest-path distance.

Pairs are routed through the batched measurement engine
(:mod:`repro.metrics.batch`), which shares landmark-path extractions,
relay segments, and group-contact scans across the whole batch;
``batch=False`` keeps the historical one-pair-at-a-time loop as the
differential oracle and perf baseline.  Callers measuring several schemes
over the same pairs (:class:`~repro.staticsim.simulation.StaticSimulation`)
pass the shortest-distance table in once via ``distances`` instead of
recomputing it per scheme.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.graphs.sampling import sample_pairs
from repro.graphs.shortest_paths import all_pairs_sampled_distances
from repro.graphs.topology import Topology
from repro.metrics.batch import make_router
from repro.protocols.base import RouteResult, RoutingScheme
from repro.utils.distributions import Summary, cdf_points, summarize

__all__ = ["StretchReport", "measure_stretch", "stretch_of_route"]


def stretch_of_route(
    topology: Topology, route: RouteResult, shortest_distance: float
) -> float:
    """Stretch of one route given the true shortest distance.

    Raises
    ------
    ValueError
        If the shortest distance is not positive (the pair's endpoints must
        differ) or the route is undelivered/empty.
    """
    if shortest_distance <= 0:
        raise ValueError("shortest_distance must be > 0 (distinct endpoints)")
    if not route.path:
        raise ValueError("cannot compute stretch of an empty route")
    return route.length(topology) / shortest_distance


@dataclass(frozen=True)
class StretchReport:
    """Stretch measurements for one protocol over sampled pairs.

    Attributes
    ----------
    scheme:
        Protocol name.
    pairs:
        The (source, destination) pairs measured.
    first_packet, later_packets:
        Stretch values aligned with ``pairs``.
    failures:
        Number of pairs whose first-packet route was not delivered (greedy
        failures in VRR); their stretch is measured over the fallback path
        and they are counted here so reports can flag them.
    """

    scheme: str
    pairs: tuple[tuple[int, int], ...]
    first_packet: tuple[float, ...]
    later_packets: tuple[float, ...]
    failures: int = 0

    @property
    def first_summary(self) -> Summary:
        """Summary of first-packet stretch."""
        return summarize(self.first_packet)

    @property
    def later_summary(self) -> Summary:
        """Summary of later-packet stretch."""
        return summarize(self.later_packets)

    def first_cdf(self) -> list[tuple[float, float]]:
        """CDF of first-packet stretch (the "<protocol>-First" curves)."""
        return cdf_points(self.first_packet)

    def later_cdf(self) -> list[tuple[float, float]]:
        """CDF of later-packet stretch (the "<protocol>-Later" curves)."""
        return cdf_points(self.later_packets)


def measure_stretch(
    scheme: RoutingScheme,
    *,
    pairs: Sequence[tuple[int, int]] | None = None,
    pair_sample: int = 500,
    seed: int = 0,
    distances: Mapping[tuple[int, int], float] | None = None,
    batch: bool = True,
) -> StretchReport:
    """Measure first- and later-packet stretch for ``scheme``.

    Parameters
    ----------
    pairs:
        Explicit source-destination pairs; defaults to ``pair_sample``
        uniformly sampled ordered pairs.
    pair_sample:
        Number of pairs to sample when ``pairs`` is not given.
    seed:
        Sampling seed.
    distances:
        Optional precomputed shortest-distance table covering every
        measured pair (as returned by
        :func:`~repro.graphs.shortest_paths.all_pairs_sampled_distances`
        for the same pairs); lets callers measuring several schemes share
        one computation.  Computed on demand when omitted.
    batch:
        Route the pairs through the batched measurement engine (default).
        ``False`` runs the historical per-pair loop -- byte-identical
        output, kept as the differential oracle and perf baseline.
    """
    topology = scheme.topology
    if pairs is None:
        measured_pairs = sample_pairs(topology, pair_sample, seed=seed)
    else:
        measured_pairs = [(s, t) for s, t in pairs if s != t]
    if not measured_pairs:
        raise ValueError("no source-destination pairs to measure")
    if distances is None:
        distances = all_pairs_sampled_distances(topology, measured_pairs)

    router = make_router(scheme) if batch else None
    route_pair = router.pair if router is not None else None
    route_length = router.route_length if router is not None else None
    first_values: list[float] = []
    later_values: list[float] = []
    failures = 0
    for source, target in measured_pairs:
        shortest = distances[(source, target)]
        if route_pair is not None:
            first, later = route_pair(source, target)
        else:
            first = scheme.first_packet_route(source, target)
            later = scheme.later_packet_route(source, target)
        if not first.delivered:
            failures += 1
        if router is not None:
            # Same guards and float math as stretch_of_route, with the
            # router's shared edge map doing the length sum (computed once
            # when both packets took the same path).
            if shortest <= 0:
                raise ValueError(
                    "shortest_distance must be > 0 (distinct endpoints)"
                )
            if not first.path or not later.path:
                raise ValueError("cannot compute stretch of an empty route")
            first_stretch = route_length(first.path) / shortest
            first_values.append(first_stretch)
            later_values.append(
                first_stretch
                if later.path == first.path
                else route_length(later.path) / shortest
            )
        else:
            first_values.append(stretch_of_route(topology, first, shortest))
            later_values.append(stretch_of_route(topology, later, shortest))
    return StretchReport(
        scheme=scheme.name,
        pairs=tuple(measured_pairs),
        first_packet=tuple(first_values),
        later_packets=tuple(later_values),
        failures=failures,
    )
