"""Congestion measurement (Figs. 4, 5, 10).

"To compute congestion, we have each node route to a random destination and
count the number of times each edge is used" (§5.2).  The metric of interest
is the distribution of paths-per-edge -- in particular its tail, where routing
through landmarks could in principle concentrate load.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.graphs.sampling import one_destination_per_node
from repro.metrics.batch import make_router
from repro.protocols.base import RoutingScheme
from repro.utils.distributions import Summary, cdf_points, summarize

__all__ = ["CongestionReport", "measure_congestion"]


@dataclass(frozen=True)
class CongestionReport:
    """Edge-usage counts for one protocol under the one-flow-per-node workload.

    Attributes
    ----------
    scheme:
        Protocol name.
    edge_usage:
        Mapping (u, v) with u < v -> number of routed paths using the edge.
        Every topology edge appears, including unused ones (count 0), because
        the paper's CDFs are taken over *all* edges.
    flows:
        Number of routed flows.
    use_later_packets:
        Whether later-packet routes (True) or first-packet routes were used.
    """

    scheme: str
    edge_usage: dict[tuple[int, int], int]
    flows: int
    use_later_packets: bool

    @property
    def usage_values(self) -> list[int]:
        """Paths-per-edge values over all edges."""
        return list(self.edge_usage.values())

    @property
    def summary(self) -> Summary:
        """Summary statistics of paths-per-edge."""
        return summarize(self.usage_values)

    def cdf(self) -> list[tuple[float, float]]:
        """CDF of paths-per-edge (the x/y of the congestion figures)."""
        return cdf_points(self.usage_values)

    def max_usage(self) -> int:
        """The most heavily used edge's path count."""
        return max(self.usage_values) if self.edge_usage else 0

    def fraction_above(self, threshold: int) -> float:
        """Fraction of edges carrying more than ``threshold`` paths (tail mass)."""
        if not self.edge_usage:
            return 0.0
        above = sum(1 for value in self.usage_values if value > threshold)
        return above / len(self.edge_usage)


def measure_congestion(
    scheme: RoutingScheme,
    *,
    pairs: Sequence[tuple[int, int]] | None = None,
    seed: int = 0,
    use_later_packets: bool = True,
    batch: bool = True,
) -> CongestionReport:
    """Measure paths-per-edge for ``scheme``.

    Parameters
    ----------
    pairs:
        The flows to route; defaults to the paper's workload of one random
        destination per node.
    seed:
        Workload sampling seed.
    use_later_packets:
        Route flows with later-packet routes (default, matching steady-state
        traffic) or with first-packet routes.
    batch:
        Route the flows through the batched measurement engine (default);
        ``False`` uses the scheme's per-pair methods (identical output).
    """
    topology = scheme.topology
    flows = list(pairs) if pairs is not None else one_destination_per_node(
        topology, seed=seed
    )
    router = make_router(scheme) if batch else None
    usage: dict[tuple[int, int], int] = {
        (u, v): 0 for u, v, _ in topology.edges()
    }
    for source, target in flows:
        if source == target:
            continue
        if router is not None:
            result = (
                router.later(source, target)
                if use_later_packets
                else router.first(source, target)
            )
        else:
            result = (
                scheme.later_packet_route(source, target)
                if use_later_packets
                else scheme.first_packet_route(source, target)
            )
        for a, b in zip(result.path, result.path[1:]):
            key = (a, b) if a < b else (b, a)
            usage[key] = usage.get(key, 0) + 1
    return CongestionReport(
        scheme=scheme.name,
        edge_usage=usage,
        flows=len(flows),
        use_later_packets=use_later_packets,
    )
