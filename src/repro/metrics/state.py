"""Per-node routing-state measurement (Figs. 2, 4, 5, 7, 9).

"We measure data plane state for the protocols.  This includes everything
necessary to forward a packet after the protocol has converged" (§5.2).  The
definition of what counts lives in each protocol's ``state_entries`` /
``state_bytes`` methods; this module samples nodes, collects the per-node
values, and summarises them the way the paper reports them (CDFs over nodes,
means and maxima, kilobytes for IPv4- and IPv6-sized names).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.addressing.address import NAME_BYTES_IPV4, NAME_BYTES_IPV6
from repro.graphs.sampling import sample_nodes
from repro.protocols.base import RoutingScheme
from repro.utils.distributions import Summary, cdf_points, summarize

__all__ = ["StateReport", "measure_state"]


@dataclass(frozen=True)
class StateReport:
    """State measurements for one protocol on one topology.

    Attributes
    ----------
    scheme:
        Protocol name.
    nodes:
        The node ids measured (all nodes, or a sample on large topologies).
    entries:
        Per-node routing-table entry counts, aligned with ``nodes``.
    bytes_ipv4, bytes_ipv6:
        Per-node state in bytes with 4-byte and 16-byte names.
    """

    scheme: str
    nodes: tuple[int, ...]
    entries: tuple[int, ...]
    bytes_ipv4: tuple[float, ...]
    bytes_ipv6: tuple[float, ...]

    @property
    def entry_summary(self) -> Summary:
        """Summary statistics of the entry counts."""
        return summarize(self.entries)

    @property
    def bytes_ipv4_summary(self) -> Summary:
        """Summary statistics of the IPv4-name byte counts."""
        return summarize(self.bytes_ipv4)

    @property
    def bytes_ipv6_summary(self) -> Summary:
        """Summary statistics of the IPv6-name byte counts."""
        return summarize(self.bytes_ipv6)

    def entry_cdf(self) -> list[tuple[float, float]]:
        """CDF points of per-node entries (the x/y of Figs. 2, 4, 5)."""
        return cdf_points(self.entries)

    def kilobytes_row(self) -> dict[str, float]:
        """The Fig. 7 row for this protocol: mean/max entries and kilobytes."""
        entries = self.entry_summary
        ipv4 = self.bytes_ipv4_summary
        ipv6 = self.bytes_ipv6_summary
        return {
            "entries_mean": entries.mean,
            "entries_max": entries.maximum,
            "kb_ipv4_mean": ipv4.mean / 1024.0,
            "kb_ipv4_max": ipv4.maximum / 1024.0,
            "kb_ipv6_mean": ipv6.mean / 1024.0,
            "kb_ipv6_max": ipv6.maximum / 1024.0,
        }


def measure_state(
    scheme: RoutingScheme,
    *,
    nodes: Sequence[int] | None = None,
    node_sample: int | None = None,
    seed: int = 0,
    batch: bool = True,
) -> StateReport:
    """Measure per-node state for ``scheme``.

    Parameters
    ----------
    nodes:
        Explicit node ids to measure.  Default: every node, or a sample of
        ``node_sample`` nodes if that is given.
    node_sample:
        Number of nodes to sample when ``nodes`` is not given.
    seed:
        Sampling seed.
    batch:
        Use the scheme's batched ``state_profile`` when it offers one
        (default), computing shared per-node intermediates once instead of
        once per metric; ``False`` runs the historical per-node loops.
        Output is identical either way.
    """
    topology = scheme.topology
    if nodes is None:
        if node_sample is None:
            measured = list(topology.nodes())
        else:
            measured = sample_nodes(topology, node_sample, seed=seed)
    else:
        measured = list(nodes)
    if not measured:
        raise ValueError("no nodes to measure")
    profile = getattr(scheme, "state_profile", None) if batch else None
    if profile is not None:
        entries, bytes_v4, bytes_v6 = profile(measured)
    else:
        entries = [scheme.state_entries(node) for node in measured]
        bytes_v4 = [
            scheme.state_bytes(node, name_bytes=NAME_BYTES_IPV4)
            for node in measured
        ]
        bytes_v6 = [
            scheme.state_bytes(node, name_bytes=NAME_BYTES_IPV6)
            for node in measured
        ]
    return StateReport(
        scheme=scheme.name,
        nodes=tuple(measured),
        entries=tuple(entries),
        bytes_ipv4=tuple(bytes_v4),
        bytes_ipv6=tuple(bytes_v6),
    )
