"""Evaluation metrics: state, stretch, congestion.

These are the three quantities the paper's figures plot (per-node state CDFs,
path-stretch CDFs over source-destination pairs, and paths-per-edge CDFs),
computed uniformly for any :class:`~repro.protocols.base.RoutingScheme`.
Control-plane messaging, the fourth metric, is produced by the discrete-event
simulator (:mod:`repro.sim`).
"""

from repro.metrics.batch import PairRouter, make_router, route_pairs_batch
from repro.metrics.state import StateReport, measure_state
from repro.metrics.stretch import StretchReport, measure_stretch, stretch_of_route
from repro.metrics.congestion import CongestionReport, measure_congestion

__all__ = [
    "CongestionReport",
    "PairRouter",
    "StateReport",
    "StretchReport",
    "make_router",
    "measure_congestion",
    "measure_state",
    "measure_stretch",
    "route_pairs_batch",
    "stretch_of_route",
]
