"""Batched route measurement over the substrate slabs.

The paper's headline numbers are measured over large samples of
source-target pairs, and after PR 1-4 moved the shortest-path kernels onto
flat arrays the *measurement loop* became the hot path: every pair routed
one at a time through the scheme objects, re-extracting the same landmark
SPT paths, re-scanning the same vicinities for group contacts, and
re-deriving identical relay segments for the first- and later-packet
routes of the same pair.

This module routes whole pair batches instead.  A per-batch
:class:`PairRouter` mirrors each scheme's routing logic *exactly* -- same
branches, same tie-breaks, same left-to-right float accumulation for path
lengths -- while sharing everything shareable across the batch:

* landmark SPT path extractions (and their reversals), keyed by
  ``(landmark, node)``;
* per-target relay state: the target's closest landmark, its address
  route, its resolver landmark and the resolver's onward route;
* compact routes, reused between a pair's first- and later-packet
  measurements (and, for Disco, between Disco and its embedded NDDisco);
* Disco's group-contact scan, driven by per-source flat candidate rows
  (hash / distance / id) instead of a rebuilt dict per query;
* one ``(u, v) -> weight`` edge map for all path-length sums.

Byte-identity with the one-pair-at-a-time loop is part of the contract and
is enforced by differential tests; ``measure_stretch(..., batch=False)``
keeps the historical loop as the oracle and as the perf baseline
(``repro bench``'s ``measurement_batch`` entry).

Schemes without a specialized router (VRR, path vector, the shortest-path
baseline) fall back to calling their route methods pair by pair, so the
batched entry points accept any :class:`RoutingScheme`.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.disco import DiscoRouting
from repro.core.nddisco import NDDiscoRouting
from repro.core.shortcutting import _apply_per_hop
from repro.naming.hashspace import HASH_BITS
from repro.protocols.base import RouteResult, RoutingScheme
from repro.protocols.s4 import S4Routing

__all__ = ["PairRouter", "make_router", "route_pairs_batch"]


def _edge_weights(topology) -> dict[tuple[int, int], float]:
    """Both-direction ``(u, v) -> weight`` map for fast path-length sums."""
    weights: dict[tuple[int, int], float] = {}
    for u, v, w in topology.edges():
        weights[(u, v)] = w
        weights[(v, u)] = w
    return weights


class PairRouter:
    """Routes ``(source, target)`` pairs for one scheme, batch-scoped.

    The base class simply defers to the scheme's own route methods (the
    correct behavior for schemes without a specialized router); subclasses
    add the shared-state fast paths.  Routers are batch-scoped (see
    :func:`make_router`); a caller holding one across calls must check
    :meth:`reusable_for`, which guards the only routing-time knob
    (``shortcut_mode``).
    """

    def __init__(self, scheme: RoutingScheme) -> None:
        self.scheme = scheme
        self._weights: dict[tuple[int, int], float] | None = None

    def reusable_for(self, scheme: RoutingScheme) -> bool:
        """True while the cached state still matches ``scheme``'s knobs."""
        return True

    def first(self, source: int, target: int) -> RouteResult:
        return self.scheme.first_packet_route(source, target)

    def later(self, source: int, target: int) -> RouteResult:
        return self.scheme.later_packet_route(source, target)

    def pair(self, source: int, target: int) -> tuple[RouteResult, RouteResult]:
        """Both route queries for one pair; subclasses fuse shared branches."""
        return self.first(source, target), self.later(source, target)

    def route_length(self, path: Sequence[int]) -> float:
        """Weighted length of ``path``; identical accumulation order to
        :meth:`RouteResult.length`."""
        if self._weights is None:
            self._weights = _edge_weights(self.scheme.topology)
        weights = self._weights
        total = 0.0
        for u, v in zip(path, path[1:]):
            total += weights[(u, v)]
        return total


class _LandmarkPathCache:
    """Shared SPT path extraction/reversal memo over dense parent rows.

    When the scheme carries :class:`SubstrateTables`, extraction walks the
    parent slab directly (one C-level array index per step); otherwise it
    walks the dict-of-rows the scheme holds.
    """

    __slots__ = ("_parents", "_num_nodes", "_tables", "_down", "_up")

    def __init__(self, landmark_parents, num_nodes: int, tables=None) -> None:
        self._parents = landmark_parents  # landmark -> dense parent row
        self._num_nodes = num_nodes
        self._tables = tables
        # Caches keyed by the flat index landmark * n + node (int keys
        # hash faster than tuples in this hot path).
        self._down: dict[int, list[int]] = {}
        self._up: dict[int, list[int]] = {}

    def down(self, landmark: int, node: int) -> list[int]:
        """The SPT path ``landmark .. node``.  Treat as read-only."""
        key = landmark * self._num_nodes + node
        path = self._down.get(key)
        if path is None:
            if self._tables is not None:
                path = self._tables.spt_path(landmark, node)
            elif node == landmark:
                path = [landmark]
            else:
                parents = self._parents[landmark]
                path = [node]
                current = node
                steps = 0
                limit = self._num_nodes
                while current != landmark:
                    parent = parents[current]
                    if parent < 0 or steps > limit:
                        raise ValueError(
                            f"node {node} not reachable from root {landmark}"
                        )
                    path.append(parent)
                    current = parent
                    steps += 1
                path.reverse()
            self._down[key] = path
        return path

    def up(self, landmark: int, node: int) -> list[int]:
        """The reversed path ``node .. landmark``.  Treat as read-only."""
        key = landmark * self._num_nodes + node
        path = self._up.get(key)
        if path is None:
            path = list(reversed(self.down(landmark, node)))
            self._up[key] = path
        return path


class _NDDiscoRouter(PairRouter):
    """Batch router mirroring :class:`NDDiscoRouting` bit for bit."""

    def __init__(self, scheme: NDDiscoRouting) -> None:
        super().__init__(scheme)
        self.nd = scheme
        self.landmarks = scheme._landmarks
        self.vicinities = scheme._vicinities
        self.closest = scheme._closest_landmark
        self.mode = scheme.shortcut_mode
        self._per_hop = self.mode.per_hop_heuristic
        self._uses_reverse = self.mode.uses_reverse_route
        # On the array backend, vicinity membership and path extraction go
        # straight through the slab table's per-node position index
        # instead of the dict-shaped view objects.
        tables = getattr(scheme, "tables", None)
        self._vic_table = tables.vicinity if tables is not None else None
        self._vic_indexes = (
            self._vic_table._indexes if self._vic_table is not None else None
        )
        self.paths = _LandmarkPathCache(
            scheme._landmark_parents, scheme.topology.num_nodes, tables
        )
        self._num_nodes = scheme.topology.num_nodes
        self._addr: dict[int, list[int]] = {}
        #: flat source * n + target -> (path, mechanism)
        self._compact: dict[int, tuple[list[int], str]] = {}
        self._onward: dict[int, tuple[int, tuple[list[int], str] | None]] = {}

    def reusable_for(self, scheme: RoutingScheme) -> bool:
        return self.mode is scheme.shortcut_mode

    # -- building blocks ----------------------------------------------------

    def _in_vicinity(self, node: int, member: int) -> bool:
        indexes = self._vic_indexes
        if indexes is not None:
            index = indexes[node]
            if index is None:
                index = self._vic_table._index(node)
            return member in index
        return member in self.vicinities[node]

    def _vicinity_path(self, node: int, member: int) -> list[int]:
        table = self._vic_table
        if table is not None:
            return table.path_from_owner(node, member)
        return self.vicinities[node].path_to(member)

    def _address_path(self, node: int) -> list[int]:
        path = self._addr.get(node)
        if path is None:
            path = list(self.nd._addresses[node].route.path)
            self._addr[node] = path
        return path

    def _knows_direct(self, source: int, target: int) -> bool:
        return target in self.landmarks or self._in_vicinity(source, target)

    def _direct(self, source: int, target: int) -> list[int]:
        if self._in_vicinity(source, target):
            return self._vicinity_path(source, target)
        return list(reversed(self.paths.down(target, source)))

    def relay(self, source: int, target: int) -> list[int]:
        """The raw relay route s .. l_t .. t (no shortcuts); fresh list."""
        to_landmark = self.paths.up(self.closest[target], source)
        from_landmark = self._address_path(target)
        return to_landmark + from_landmark[1:]

    def _apply_per_hop(self, route: list[int]) -> list[int]:
        heuristic = self._per_hop
        if heuristic == "up-down-stream":
            return _apply_per_hop(
                self.scheme.topology, route, self.vicinities, heuristic
            )
        # Inline truncate_at_destination + the To-Destination splice.
        destination = route[-1]
        first_index = route.index(destination)
        route = route[: first_index + 1]  # slicing copies; fresh list
        if heuristic == "none" or len(route) <= 1:
            return route
        indexes = self._vic_indexes
        if indexes is not None:
            table = self._vic_table
            for index in range(len(route) - 1):
                node = route[index]
                member_index = indexes[node]
                if member_index is None:
                    member_index = table._index(node)
                if destination in member_index:
                    return route[:index] + table.path_from_owner(
                        node, destination
                    )
            return route
        for index in range(len(route) - 1):
            node = route[index]
            if destination in self.vicinities[node]:
                return route[:index] + self.vicinities[node].path_to(
                    destination
                )
        return route

    def shortcut(
        self, forward: list[int], reverse: list[int] | None
    ) -> list[int]:
        """Mirror of :func:`~repro.core.shortcutting.apply_shortcuts`."""
        forward = self._apply_per_hop(forward)
        if not self._uses_reverse:
            return forward
        assert reverse is not None
        reverse = self._apply_per_hop(reverse)
        reverse_as_forward = list(reversed(reverse))
        if self.route_length(reverse_as_forward) < self.route_length(forward):
            return reverse_as_forward
        return forward

    def compact(self, source: int, target: int) -> tuple[list[int], str]:
        """Memoized mirror of :meth:`NDDiscoRouting.compact_route`."""
        key = source * self._num_nodes + target
        cached = self._compact.get(key)
        if cached is not None:
            return cached
        if source == target:
            result: tuple[list[int], str] = ([source], "self")
        elif self._knows_direct(source, target):
            result = (self._direct(source, target), "direct")
        else:
            forward = self.relay(source, target)
            reverse = (
                self.relay(target, source) if self._uses_reverse else None
            )
            result = (self.shortcut(forward, reverse), "landmark-relay")
        self._compact[key] = result
        return result

    def _resolver_onward(
        self, target: int
    ) -> tuple[int, tuple[list[int], str] | None]:
        cached = self._onward.get(target)
        if cached is None:
            resolver = self.nd._resolution.home_landmark(
                self.nd._names[target]
            )
            onward = (
                self.compact(resolver, target) if resolver != target else None
            )
            cached = (resolver, onward)
            self._onward[target] = cached
        return cached

    # -- the two route queries ----------------------------------------------

    def first(self, source: int, target: int) -> RouteResult:
        if source == target:
            return RouteResult(path=(source,), mechanism="self")
        if self._knows_direct(source, target):
            return RouteResult(
                path=tuple(self._direct(source, target)), mechanism="direct"
            )
        if not self.nd._resolve_first_packet:
            path, mechanism = self.compact(source, target)
            return RouteResult(path=tuple(path), mechanism=mechanism)
        resolver, onward = self._resolver_onward(target)
        to_resolver = self.paths.up(resolver, source)
        if resolver == target:
            return RouteResult(
                path=tuple(to_resolver), mechanism="resolver-is-target"
            )
        assert onward is not None
        full = to_resolver + onward[0][1:]
        index = full.index(target)
        return RouteResult(
            path=tuple(full[: index + 1]), mechanism="resolve-then-route"
        )

    def later(self, source: int, target: int) -> RouteResult:
        if source == target:
            return RouteResult(path=(source,), mechanism="self")
        if self._knows_direct(source, target):
            return RouteResult(
                path=tuple(self._direct(source, target)), mechanism="direct"
            )
        return self._later_indirect(source, target)

    def _later_indirect(self, source: int, target: int) -> RouteResult:
        if self._in_vicinity(target, source):
            reverse = self._vicinity_path(target, source)
            return RouteResult(
                path=tuple(reversed(reverse)), mechanism="handshake"
            )
        path, mechanism = self.compact(source, target)
        return RouteResult(path=tuple(path), mechanism=mechanism)

    def pair(self, source: int, target: int) -> tuple[RouteResult, RouteResult]:
        if source == target:
            result = RouteResult(path=(source,), mechanism="self")
            return result, result
        if self._knows_direct(source, target):
            result = RouteResult(
                path=tuple(self._direct(source, target)), mechanism="direct"
            )
            return result, result
        return (
            self.first(source, target),
            self._later_indirect(source, target),
        )


class _DiscoRouter(PairRouter):
    """Batch router mirroring :class:`DiscoRouting` bit for bit."""

    def __init__(self, scheme: DiscoRouting) -> None:
        super().__init__(scheme)
        self.disco = scheme
        self.nd = _NDDiscoRouter(scheme._nddisco)
        self.grouping = scheme._grouping
        self._hashes = scheme._grouping._hashes
        #: source -> parallel (hash, distance, member) candidate rows over
        #: the source's vicinity (owner excluded), built on first use.
        self._contacts: dict[int, tuple[list[int], list[float], list[int]]] = {}

    def reusable_for(self, scheme: RoutingScheme) -> bool:
        return (
            self.nd.mode is scheme.shortcut_mode
            and scheme.shortcut_mode is scheme.nddisco.shortcut_mode
        )

    def route_length(self, path: Sequence[int]) -> float:
        return self.nd.route_length(path)

    def _candidate_rows(
        self, source: int
    ) -> tuple[list[int], list[float], list[int]]:
        rows = self._contacts.get(source)
        if rows is None:
            node_hashes = self._hashes
            table = self.nd._vic_table
            if table is not None:
                # The owner is always the row's first member (settle
                # order), so slicing from position 1 is exactly the
                # historical ``member != source`` filter.
                lo, hi = table.row_bounds(source)
                ids = memoryview(table.members)[lo + 1 : hi].tolist()
                dists = memoryview(table.dists)[lo + 1 : hi].tolist()
                hashes = [node_hashes[member] for member in ids]
            else:
                hashes, dists, ids = [], [], []
                for member, distance in self.nd.vicinities[
                    source
                ].distances.items():
                    if member == source:
                        continue
                    hashes.append(node_hashes[member])
                    dists.append(distance)
                    ids.append(member)
            rows = (hashes, dists, ids)
            self._contacts[source] = rows
        return rows

    def _group_contact(self, source: int, target: int) -> int | None:
        """Flat-row mirror of :meth:`SloppyGrouping.best_group_contact`.

        Same total order -- longest common prefix, then smaller distance,
        then smaller id -- expressed over the candidate rows with the
        xor/bit-length prefix computation inlined.
        """
        hashes, dists, ids = self._candidate_rows(source)
        if not hashes:
            return None
        target_hash = self._hashes[target]
        best_node = None
        best_match = -1
        best_dist = 0.0
        for position, candidate_hash in enumerate(hashes):
            diff = candidate_hash ^ target_hash
            match = HASH_BITS - diff.bit_length() if diff else HASH_BITS
            if match < best_match:
                continue
            distance = dists[position]
            if match == best_match:
                # Rows are id-ascending within equal distance only by
                # vicinity settle order, so break distance ties by the
                # explicit id comparison the original total order used.
                if distance > best_dist or (
                    distance == best_dist and ids[position] > best_node
                ):
                    continue
            best_match = match
            best_dist = distance
            best_node = ids[position]
        return best_node

    def _via_contact(self, source: int, contact: int, target: int) -> list[int]:
        nd = self.nd
        to_contact = nd._vicinity_path(source, contact)
        if contact == target:
            return to_contact
        return to_contact + nd.relay(contact, target)[1:]

    def _reverse_first(self, source: int, target: int) -> list[int]:
        nd = self.nd
        if nd._knows_direct(target, source):
            return nd._direct(target, source)
        if self.grouping.stores_address_of(target, source):
            return nd.relay(target, source)
        contact = self._group_contact(target, source)
        if contact is not None and self.grouping.stores_address_of(
            contact, source
        ):
            return self._via_contact(target, contact, source)
        return nd.relay(target, source)

    def first(self, source: int, target: int) -> RouteResult:
        nd = self.nd
        if source == target:
            return RouteResult(path=(source,), mechanism="self")
        if nd._knows_direct(source, target):
            return RouteResult(
                path=tuple(nd._direct(source, target)), mechanism="direct"
            )
        if self.grouping.stores_address_of(source, target):
            path, _ = nd.compact(source, target)
            return RouteResult(path=tuple(path), mechanism="known-address")

        contact = self._group_contact(source, target)
        if contact is not None and self.grouping.stores_address_of(
            contact, target
        ):
            forward = self._via_contact(source, contact, target)
            reverse = (
                self._reverse_first(source, target)
                if nd._uses_reverse
                else None
            )
            path = nd.shortcut(forward, reverse)
            return RouteResult(path=tuple(path), mechanism="group-contact")

        result = nd.first(source, target)
        return RouteResult(path=result.path, mechanism="resolution-fallback")

    def later(self, source: int, target: int) -> RouteResult:
        return self.nd.later(source, target)

    def pair(self, source: int, target: int) -> tuple[RouteResult, RouteResult]:
        nd = self.nd
        if source == target:
            result = RouteResult(path=(source,), mechanism="self")
            return result, result
        if nd._knows_direct(source, target):
            result = RouteResult(
                path=tuple(nd._direct(source, target)), mechanism="direct"
            )
            return result, result
        return (
            self.first(source, target),
            nd._later_indirect(source, target),
        )


class _S4Router(PairRouter):
    """Batch router mirroring :class:`S4Routing` bit for bit."""

    def __init__(self, scheme: S4Routing) -> None:
        super().__init__(scheme)
        self.s4 = scheme
        self.landmarks = scheme._landmarks
        self.closest = scheme._closest_landmark
        self.balls = scheme._ball_distances
        # Slab fast path for ball membership / path extraction (None on
        # the dict backend).
        self._ball_table = scheme.balls
        self._ball_indexes = (
            self._ball_table._indexes if self._ball_table is not None else None
        )
        self.paths = _LandmarkPathCache(
            scheme._landmark_parents,
            scheme.topology.num_nodes,
            scheme.tables,
        )
        self._num_nodes = scheme.topology.num_nodes
        #: flat holder * n + member / source * n + target keys
        self._cluster_paths: dict[int, list[int]] = {}
        self._compact: dict[int, tuple[list[int], str]] = {}
        self._onward: dict[int, tuple[int, tuple[list[int], str] | None]] = {}

    def _in_cluster(self, holder: int, member: int) -> bool:
        if holder == member:
            return False
        indexes = self._ball_indexes
        if indexes is not None:
            index = indexes[member]
            if index is None:
                index = self._ball_table._index(member)
            return holder in index
        return holder in self.balls[member]

    def _cluster_path(self, holder: int, member: int) -> list[int]:
        key = holder * self._num_nodes + member
        path = self._cluster_paths.get(key)
        if path is None:
            table = self._ball_table
            if table is not None:
                path = list(reversed(table.path_from_owner(member, holder)))
            else:
                path = self.s4.cluster_path(holder, member)
            self._cluster_paths[key] = path
        return path

    def _knows_direct(self, source: int, target: int) -> bool:
        return target in self.landmarks or self._in_cluster(source, target)

    def _direct(self, source: int, target: int) -> list[int]:
        if self._in_cluster(source, target):
            return self._cluster_path(source, target)
        return list(reversed(self.paths.down(target, source)))

    def compact(self, source: int, target: int) -> tuple[list[int], str]:
        key = source * self._num_nodes + target
        cached = self._compact.get(key)
        if cached is not None:
            return cached
        if source == target:
            result: tuple[list[int], str] = ([source], "self")
        elif self._knows_direct(source, target):
            result = (self._direct(source, target), "direct")
        else:
            landmark = self.closest[target]
            base = self.paths.up(landmark, source) + self.paths.down(
                landmark, target
            )[1:]
            result = (self._cluster_shortcut(base, target), "landmark-relay")
        self._compact[key] = result
        return result

    def _cluster_shortcut(self, route: list[int], target: int) -> list[int]:
        if target in route[:-1]:
            return route[: route.index(target) + 1]
        for index in range(len(route) - 1):
            node = route[index]
            if self._in_cluster(node, target):
                return route[:index] + self._cluster_path(node, target)
        return route

    def _resolver_onward(
        self, target: int
    ) -> tuple[int, tuple[list[int], str] | None]:
        cached = self._onward.get(target)
        if cached is None:
            resolver = self.s4._resolution.home_landmark(
                self.s4._names[target]
            )
            onward = (
                self.compact(resolver, target) if resolver != target else None
            )
            cached = (resolver, onward)
            self._onward[target] = cached
        return cached

    def first(self, source: int, target: int) -> RouteResult:
        if source == target:
            return RouteResult(path=(source,), mechanism="self")
        if self._knows_direct(source, target):
            return RouteResult(
                path=tuple(self._direct(source, target)), mechanism="direct"
            )
        if not self.s4._resolve_first_packet:
            path, mechanism = self.compact(source, target)
            return RouteResult(path=tuple(path), mechanism=mechanism)
        resolver, onward = self._resolver_onward(target)
        to_resolver = self.paths.up(resolver, source)
        if resolver == target:
            return RouteResult(
                path=tuple(to_resolver), mechanism="resolver-is-target"
            )
        assert onward is not None
        full = to_resolver + onward[0][1:]
        if target in full[:-1]:
            full = full[: full.index(target) + 1]
        return RouteResult(path=tuple(full), mechanism="resolve-then-route")

    def later(self, source: int, target: int) -> RouteResult:
        if source == target:
            return RouteResult(path=(source,), mechanism="self")
        path, mechanism = self.compact(source, target)
        return RouteResult(path=tuple(path), mechanism=mechanism)

    def pair(self, source: int, target: int) -> tuple[RouteResult, RouteResult]:
        if source == target:
            result = RouteResult(path=(source,), mechanism="self")
            return result, result
        return self.first(source, target), self.later(source, target)


def make_router(scheme: RoutingScheme) -> PairRouter:
    """Build the batch router for ``scheme`` (generic fallback otherwise).

    Routers are batch-scoped on purpose: caching them for the scheme's
    lifetime was measured to retain several MB of extracted paths and
    candidate rows across a scenario suite -- exactly the per-measurement
    state the slab refactor evicted from the schemes -- so each
    measurement call builds a fresh router and lets its caches die with
    the batch.  (:meth:`PairRouter.reusable_for` still guards any caller
    that chooses to hold one across calls.)
    """
    if type(scheme) is NDDiscoRouting:
        return _NDDiscoRouter(scheme)
    if type(scheme) is DiscoRouting:
        # Disco shares its shortcut mode with the embedded NDDisco (the
        # setter keeps them in lockstep); if a caller desynchronized them
        # by hand, defer to the scheme's own per-pair methods.
        if scheme.shortcut_mode is scheme.nddisco.shortcut_mode:
            return _DiscoRouter(scheme)
        return PairRouter(scheme)
    if type(scheme) is S4Routing:
        return _S4Router(scheme)
    return PairRouter(scheme)


def route_pairs_batch(
    scheme: RoutingScheme, pairs: Iterable[tuple[int, int]]
) -> list[tuple[RouteResult, RouteResult]]:
    """Route every pair; returns ``(first_packet, later_packets)`` per pair.

    Byte-identical to calling ``scheme.first_packet_route`` /
    ``scheme.later_packet_route`` pair by pair, but shares the batch-wide
    state described in the module docstring.
    """
    router = make_router(scheme)
    return [router.pair(source, target) for source, target in pairs]
