"""repro: a reproduction of "Scalable Routing on Flat Names" (Disco).

The public API re-exports the pieces a downstream user typically needs:

* topologies and generators (:mod:`repro.graphs`),
* the Disco / NDDisco protocols (:mod:`repro.core`),
* the baseline protocols the paper compares against (:mod:`repro.protocols`),
* the evaluation metrics (:mod:`repro.metrics`),
* the static and discrete-event simulators (:mod:`repro.staticsim`,
  :mod:`repro.sim`),
* the experiment harness that regenerates every table and figure
  (:mod:`repro.experiments`).

Quick start::

    from repro import gnm_random_graph, DiscoRouting, measure_stretch

    topology = gnm_random_graph(256, seed=1)
    disco = DiscoRouting(topology, seed=1)
    report = measure_stretch(disco, pair_sample=200, seed=1)
    print(report.first_summary.mean, report.later_summary.mean)
"""

from repro.graphs import (
    Topology,
    geometric_random_graph,
    gnm_random_graph,
    internet_as_level,
    internet_router_level,
)
from repro.core import (
    DiscoRouting,
    NDDiscoRouting,
    ShortcutMode,
)
from repro.protocols import (
    PathVectorRouting,
    RouteResult,
    RoutingScheme,
    S4Routing,
    ShortestPathRouting,
    VirtualRingRouting,
    build_scheme,
)
from repro.metrics import (
    measure_congestion,
    measure_state,
    measure_stretch,
)

__version__ = "1.0.0"

__all__ = [
    "DiscoRouting",
    "NDDiscoRouting",
    "PathVectorRouting",
    "RouteResult",
    "RoutingScheme",
    "S4Routing",
    "ShortcutMode",
    "ShortestPathRouting",
    "Topology",
    "VirtualRingRouting",
    "__version__",
    "build_scheme",
    "geometric_random_graph",
    "gnm_random_graph",
    "internet_as_level",
    "internet_router_level",
    "measure_congestion",
    "measure_state",
    "measure_stretch",
]
