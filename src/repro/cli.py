"""Command-line interface.

The CLI wraps the library's most common workflows so that a downstream user
can reproduce the paper or study their own topology without writing code::

    python -m repro list                              # experiment ids
    python -m repro scenarios list                    # declarative catalog
    python -m repro run fig04-gnm-comparison          # one experiment
    python -m repro run --all --workers 4             # everything, in parallel
    python -m repro run fig02 fig03 --json-dir out/   # structured JSON results
    python -m repro generate gnm 1024 --out net.edges # write a topology
    python -m repro profile net.edges                 # structural profile
    python -m repro compare net.edges --protocols disco s4 vrr
    python -m repro bench --out BENCH_kernels.json    # perf-regression harness

``repro run`` executes through the scenario engine
(:mod:`repro.scenarios.engine`): prerequisites (topologies, converged
routing substrates) are deduplicated through a content-addressed on-disk
cache (``--cache-dir``, default ``.repro_cache``; ``--no-cache`` disables),
``--workers N`` fans scenarios and their shards out over a process pool
with byte-identical output, and ``--json-dir`` writes one structured JSON
document per scenario next to the text reports.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Sequence

from repro.experiments.config import default_scale
from repro.experiments.runner import EXPERIMENTS
from repro.graphs.analysis import profile_topology
from repro.graphs.generators import (
    geometric_random_graph,
    gnm_random_graph,
    internet_as_level,
    internet_router_level,
)
from repro.graphs.io import read_edge_list, write_edge_list
from repro.protocols.registry import available_schemes
from repro.staticsim.simulation import StaticSimulation
from repro.utils.formatting import format_table

__all__ = ["main", "build_parser"]

#: Default root of the on-disk artifact cache (overridable via
#: ``REPRO_CACHE_DIR`` or ``--cache-dir``).
DEFAULT_CACHE_DIR = ".repro_cache"

_GENERATORS = {
    "gnm": gnm_random_graph,
    "geometric": geometric_random_graph,
    "as-level": internet_as_level,
    "router-level": internet_router_level,
}


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Scalable Routing on Flat Names' (Disco).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the available experiment ids")

    run_parser = subparsers.add_parser("run", help="run experiments")
    run_parser.add_argument("experiments", nargs="*", help="experiment ids")
    run_parser.add_argument(
        "--all", action="store_true", help="run every experiment"
    )
    run_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="fan scenarios and their shards out over this many worker "
        "processes (output is byte-identical to a serial run)",
    )
    run_parser.add_argument(
        "--json-dir",
        default=None,
        help="also write one structured JSON result per scenario (plus a "
        "manifest.json with run bookkeeping) into this directory",
    )
    run_parser.add_argument(
        "--cache-dir",
        default=None,
        help="root of the on-disk artifact cache deduplicating topologies "
        "and converged substrates across scenarios, workers, and runs "
        f"(default: $REPRO_CACHE_DIR or {DEFAULT_CACHE_DIR})",
    )
    run_parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable artifact caching (every prerequisite is rebuilt)",
    )

    scenarios_parser = subparsers.add_parser(
        "scenarios", help="inspect the declarative scenario catalog"
    )
    scenarios_sub = scenarios_parser.add_subparsers(
        dest="scenarios_command", required=True
    )
    scenarios_sub.add_parser(
        "list", help="list every scenario with its spec (family, protocols, "
        "metrics, shards, aliases)"
    )

    generate_parser = subparsers.add_parser(
        "generate", help="generate a topology and write it as an edge list"
    )
    generate_parser.add_argument("family", choices=sorted(_GENERATORS))
    generate_parser.add_argument("nodes", type=int)
    generate_parser.add_argument("--seed", type=int, default=0)
    generate_parser.add_argument("--out", required=True, help="output file path")

    profile_parser = subparsers.add_parser(
        "profile", help="print a structural profile of an edge-list topology"
    )
    profile_parser.add_argument("path")
    profile_parser.add_argument("--seed", type=int, default=0)

    compare_parser = subparsers.add_parser(
        "compare", help="compare protocols on an edge-list topology"
    )
    compare_parser.add_argument("path")
    compare_parser.add_argument(
        "--protocols",
        nargs="+",
        default=["disco", "nd-disco", "s4"],
        choices=available_schemes(),
    )
    compare_parser.add_argument("--seed", type=int, default=0)
    compare_parser.add_argument("--pairs", type=int, default=300)

    bench_parser = subparsers.add_parser(
        "bench",
        help="time the reference vs CSR shortest-path engines and write "
        "BENCH_kernels.json",
    )
    bench_parser.add_argument(
        "--quick",
        action="store_true",
        help="shrunken workloads (CI smoke run; numbers are a canary only)",
    )
    bench_parser.add_argument(
        "--out", default="BENCH_kernels.json", help="output JSON path"
    )
    bench_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="also time the multiprocessing fan-out with this many workers",
    )
    bench_parser.add_argument(
        "--kernel",
        choices=["heap", "bucket"],
        default=None,
        help="force a weighted kernel on the CSR side wherever the weight "
        "profile allows it (A/B the indexed 4-ary heap against the Dial "
        "bucket queue); skips the end-to-end staticsim cases, which always "
        "auto-select; default: auto-select per topology",
    )
    return parser


def _command_list() -> int:
    for experiment_id in EXPERIMENTS:
        print(experiment_id)
    return 0


def _command_run(args: argparse.Namespace) -> int:
    from repro.scenarios import registry

    selected = list(EXPERIMENTS) if args.all else list(args.experiments)
    if not selected:
        print("no experiments selected (pass ids or --all)", file=sys.stderr)
        return 2
    if args.no_cache:
        cache = None
    else:
        cache = (
            args.cache_dir
            or os.environ.get("REPRO_CACHE_DIR")
            or DEFAULT_CACHE_DIR
        )
    from repro.scenarios.engine import run_scenarios

    try:
        # run_scenarios resolves ids/aliases itself (planning happens
        # before any execution, so an unknown id fails fast).
        runs = run_scenarios(
            selected,
            scale=default_scale(),
            workers=args.workers,
            json_dir=args.json_dir,
            cache=cache,
            echo=lambda message: print(message, file=sys.stderr),
        )
    except registry.UnknownScenarioError as error:
        print(str(error), file=sys.stderr)
        return 2
    for run in runs.values():
        print(run.report)
        print()
    return 0


def _command_scenarios(args: argparse.Namespace) -> int:
    from repro.scenarios import all_scenarios

    if args.scenarios_command == "list":
        scale = default_scale()
        rows = []
        for scenario in all_scenarios():
            shard_keys = scenario.shard_keys(scale)
            rows.append(
                [
                    scenario.scenario_id,
                    ",".join(scenario.family),
                    ",".join(scenario.protocols) or "-",
                    ",".join(scenario.metrics),
                    str(len(shard_keys)) if shard_keys else "-",
                    ",".join(scenario.aliases) or "-",
                ]
            )
        print(
            format_table(
                ["scenario", "families", "protocols", "metrics", "shards",
                 "aliases"],
                rows,
            )
        )
        return 0
    print(f"unknown scenarios command {args.scenarios_command!r}", file=sys.stderr)
    return 2  # pragma: no cover - argparse enforces the choices


def _command_generate(args: argparse.Namespace) -> int:
    generator = _GENERATORS[args.family]
    topology = generator(args.nodes, seed=args.seed)
    write_edge_list(topology, args.out)
    print(
        f"wrote {topology.num_nodes} nodes / {topology.num_edges} edges to {args.out}"
    )
    return 0


def _command_profile(args: argparse.Namespace) -> int:
    topology = read_edge_list(args.path)
    profile = profile_topology(topology, seed=args.seed)
    rows = [
        ["nodes", profile.num_nodes],
        ["edges", profile.num_edges],
        ["average degree", profile.average_degree],
        ["max degree", profile.max_degree],
        ["mean path length", profile.path_length_summary.mean],
        ["estimated diameter", profile.estimated_diameter],
    ]
    print(format_table(["property", "value"], rows, float_format="{:.2f}"))
    return 0


def _command_compare(args: argparse.Namespace) -> int:
    topology = read_edge_list(args.path)
    if not topology.is_connected():
        topology, _ = topology.largest_component_subgraph()
        print(
            f"note: using the largest connected component ({topology.num_nodes} nodes)"
        )
    simulation = StaticSimulation(topology, args.protocols, seed=args.seed)
    results = simulation.run(
        measure_state_flag=True,
        measure_stretch_flag=True,
        pair_sample=args.pairs,
    )
    rows = []
    for name in sorted(results.state):
        state = results.state[name].entry_summary
        stretch = results.stretch[name]
        rows.append(
            [
                name,
                state.mean,
                state.maximum,
                stretch.first_summary.mean,
                stretch.later_summary.mean,
            ]
        )
    print(
        format_table(
            ["protocol", "state mean", "state max", "first stretch", "later stretch"],
            rows,
            float_format="{:.2f}",
        )
    )
    return 0


def _command_bench(args: argparse.Namespace) -> int:
    from repro.perf.kernel_bench import bench_kernels, write_bench_json

    # Validate the output path before spending minutes on the benchmarks,
    # without leaving an empty file behind if the run later fails.
    existed = os.path.exists(args.out)
    try:
        with open(args.out, "a", encoding="utf-8"):
            pass
    except OSError as error:
        print(f"cannot write {args.out}: {error}", file=sys.stderr)
        return 2
    if not existed:
        os.remove(args.out)
    report = bench_kernels(
        quick=args.quick, workers=args.workers, kernel=args.kernel
    )
    rows = []
    for name, entry in report["benchmarks"].items():
        rows.append(
            [name, entry["before_s"], entry["after_s"], entry["speedup"]]
        )
    print(
        format_table(
            ["benchmark", "before (s)", "after (s)", "speedup"],
            rows,
            float_format="{:.4f}",
        )
    )
    write_bench_json(report, args.out)
    print(f"wrote {args.out}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        return _command_list()
    if args.command == "run":
        return _command_run(args)
    if args.command == "scenarios":
        return _command_scenarios(args)
    if args.command == "generate":
        return _command_generate(args)
    if args.command == "profile":
        return _command_profile(args)
    if args.command == "compare":
        return _command_compare(args)
    if args.command == "bench":
        return _command_bench(args)
    parser.error(f"unknown command {args.command!r}")
    return 2  # pragma: no cover - parser.error raises


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
