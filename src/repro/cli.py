"""Command-line interface.

The CLI wraps the library's most common workflows so that a downstream user
can reproduce the paper or study their own topology without writing code::

    python -m repro list                              # experiment ids
    python -m repro scenarios list                    # declarative catalog
    python -m repro run fig04-gnm-comparison          # one experiment
    python -m repro run --all --workers 4             # everything, in parallel
    python -m repro run fig02 fig03 --json-dir out/   # structured JSON results
    python -m repro generate gnm 1024 --out net.edges # write a topology
    python -m repro ingest isp.cch --format rocketfuel # stream a real map
    python -m repro run fig02 --topology-file isp.cch --topology-format rocketfuel
    python -m repro profile net.edges                 # structural profile
    python -m repro compare net.edges --protocols disco s4 vrr
    python -m repro bench --out BENCH_kernels.json    # perf-regression harness
    python -m repro bench compare latest 24b0d68      # run-to-run deltas
    python -m repro substrate gnm 1048576 --storage slabs --vicinity-storage mmap
    python -m repro cache stats                       # artifact-cache totals
    python -m repro cache prune --max-bytes 500M      # bound the cache on disk

``repro run`` executes through the scenario engine
(:mod:`repro.scenarios.engine`): prerequisites (topologies, converged
routing substrates) are deduplicated through a content-addressed on-disk
cache (``--cache-dir``, default ``.repro_cache``; ``--no-cache`` disables),
``--workers N`` fans scenarios and their shards out over a process pool
with byte-identical output, and ``--json-dir`` writes one structured JSON
document per scenario next to the text reports.  ``repro cache`` manages
the cache's disk footprint (see ``docs/CACHING.md``).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Sequence

from repro.experiments.config import default_scale
from repro.experiments.runner import EXPERIMENTS
from repro.graphs.analysis import profile_topology
from repro.graphs.generators import (
    geometric_random_graph,
    gnm_random_graph,
    internet_as_level,
    internet_router_level,
)
from repro.graphs.io import read_edge_list, write_edge_list
from repro.protocols.registry import available_schemes
from repro.staticsim.simulation import StaticSimulation
from repro.utils.formatting import format_table

__all__ = ["main", "build_parser"]

#: Default root of the on-disk artifact cache (overridable via
#: ``REPRO_CACHE_DIR`` or ``--cache-dir``).
DEFAULT_CACHE_DIR = ".repro_cache"

_GENERATORS = {
    "gnm": gnm_random_graph,
    "geometric": geometric_random_graph,
    "as-level": internet_as_level,
    "router-level": internet_router_level,
}


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Scalable Routing on Flat Names' (Disco).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the available experiment ids")

    run_parser = subparsers.add_parser("run", help="run experiments")
    run_parser.add_argument("experiments", nargs="*", help="experiment ids")
    run_parser.add_argument(
        "--all", action="store_true", help="run every experiment"
    )
    run_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="fan scenarios and their shards out over this many worker "
        "processes (output is byte-identical to a serial run)",
    )
    run_parser.add_argument(
        "--json-dir",
        default=None,
        help="also write one structured JSON result per scenario (plus a "
        "manifest.json with run bookkeeping) into this directory",
    )
    run_parser.add_argument(
        "--cache-dir",
        default=None,
        help="root of the on-disk artifact cache deduplicating topologies "
        "and converged substrates across scenarios, workers, and runs "
        f"(default: $REPRO_CACHE_DIR or {DEFAULT_CACHE_DIR})",
    )
    run_parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable artifact caching (every prerequisite is rebuilt)",
    )
    run_parser.add_argument(
        "--topology-file",
        default=None,
        metavar="PATH",
        help="ingest this real-topology dataset and add a 'real' "
        "panel/column to the figure scenarios that accept one "
        "(fig02, fig03, fig10)",
    )
    run_parser.add_argument(
        "--topology-format",
        default="edge-list",
        metavar="FORMAT",
        help="registered ingest format for --topology-file "
        "(see 'repro ingest --list-formats'; default: edge-list)",
    )

    cache_parser = subparsers.add_parser(
        "cache",
        help="inspect and manage the on-disk artifact cache "
        "(stats, ls, clear, prune)",
    )
    cache_sub = cache_parser.add_subparsers(dest="cache_command", required=True)

    def add_cache_dir(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--cache-dir",
            default=None,
            help="cache root (default: $REPRO_CACHE_DIR or "
            f"{DEFAULT_CACHE_DIR})",
        )

    stats_parser = cache_sub.add_parser(
        "stats",
        help="per-kind artifact counts and byte totals; refreshes the "
        "aggregate manifest.json at the cache root",
    )
    add_cache_dir(stats_parser)
    ls_parser = cache_sub.add_parser(
        "ls", help="list every artifact with size and last-hit age"
    )
    add_cache_dir(ls_parser)
    ls_parser.add_argument(
        "--kind",
        choices=["topology", "substrate", "tables", "scheme"],
        default=None,
        help="restrict the listing to one artifact kind",
    )
    clear_parser = cache_sub.add_parser(
        "clear", help="remove every cached artifact"
    )
    add_cache_dir(clear_parser)
    prune_parser = cache_sub.add_parser(
        "prune",
        help="evict artifacts by age and/or least-recently-hit order "
        "until the cache fits a byte budget",
    )
    add_cache_dir(prune_parser)
    prune_parser.add_argument(
        "--max-bytes",
        default=None,
        help="evict least-recently-hit artifacts until the summed pickle "
        "bytes are at or under this budget (suffixes K/M/G accepted, "
        "e.g. 500M)",
    )
    prune_parser.add_argument(
        "--max-age-days",
        type=float,
        default=None,
        help="evict artifacts whose last hit is older than this many days",
    )
    prune_parser.add_argument(
        "--dry-run",
        action="store_true",
        help="print what would be evicted without touching the store",
    )

    scenarios_parser = subparsers.add_parser(
        "scenarios", help="inspect the declarative scenario catalog"
    )
    scenarios_sub = scenarios_parser.add_subparsers(
        dest="scenarios_command", required=True
    )
    scenarios_sub.add_parser(
        "list", help="list every scenario with its spec (family, protocols, "
        "metrics, shards, aliases)"
    )

    ingest_parser = subparsers.add_parser(
        "ingest",
        help="stream a real-topology dataset into an array-backed "
        "CSRTopology (and the artifact cache) without building dict "
        "adjacency; prints a structural summary",
    )
    ingest_parser.add_argument(
        "path",
        nargs="?",
        default=None,
        help="dataset path (omit with --list-formats)",
    )
    ingest_parser.add_argument(
        "--format",
        dest="fmt",
        default="edge-list",
        metavar="FORMAT",
        help="registered format name (default: edge-list)",
    )
    ingest_parser.add_argument(
        "--list-formats",
        action="store_true",
        help="list the registered ingest formats and exit",
    )
    ingest_parser.add_argument(
        "--name", default=None, help="override the topology name"
    )
    ingest_parser.add_argument(
        "--largest-component",
        action="store_true",
        help="keep only the largest connected component (what the "
        "figure scenarios do; real maps are routinely disconnected)",
    )
    ingest_parser.add_argument(
        "--delay",
        type=float,
        default=None,
        help="per-link delay for formats with a single delay knob "
        "(caida-aslinks)",
    )
    ingest_parser.add_argument(
        "--internal-delay",
        type=float,
        default=None,
        help="intra-ISP link delay (rocketfuel; default 2.0)",
    )
    ingest_parser.add_argument(
        "--external-delay",
        type=float,
        default=None,
        help="external link delay (rocketfuel; default 34.0)",
    )
    ingest_parser.add_argument(
        "--cache-dir",
        default=None,
        help="persist the parsed topology as a content-addressed artifact "
        "under this cache root (default: $REPRO_CACHE_DIR or "
        f"{DEFAULT_CACHE_DIR})",
    )
    ingest_parser.add_argument(
        "--no-cache",
        action="store_true",
        help="parse only; do not touch the artifact cache",
    )

    generate_parser = subparsers.add_parser(
        "generate", help="generate a topology and write it as an edge list"
    )
    generate_parser.add_argument("family", choices=sorted(_GENERATORS))
    generate_parser.add_argument("nodes", type=int)
    generate_parser.add_argument("--seed", type=int, default=0)
    generate_parser.add_argument("--out", required=True, help="output file path")

    profile_parser = subparsers.add_parser(
        "profile", help="print a structural profile of an edge-list topology"
    )
    profile_parser.add_argument("path")
    profile_parser.add_argument("--seed", type=int, default=0)

    compare_parser = subparsers.add_parser(
        "compare", help="compare protocols on an edge-list topology"
    )
    compare_parser.add_argument("path")
    compare_parser.add_argument(
        "--protocols",
        nargs="+",
        default=["disco", "nd-disco", "s4"],
        choices=available_schemes(),
    )
    compare_parser.add_argument("--seed", type=int, default=0)
    compare_parser.add_argument("--pairs", type=int, default=300)

    bench_parser = subparsers.add_parser(
        "bench",
        help="time the reference vs CSR shortest-path engines and write "
        "BENCH_kernels.json",
    )
    bench_parser.add_argument(
        "--quick",
        action="store_true",
        help="shrunken workloads (CI smoke run; numbers are a canary only)",
    )
    bench_parser.add_argument(
        "--out", default="BENCH_kernels.json", help="output JSON path"
    )
    bench_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="also time the multiprocessing fan-out with this many workers",
    )
    bench_parser.add_argument(
        "--kernel",
        choices=["heap", "bucket", "bfs"],
        default=None,
        help="force a kernel on the CSR side wherever the weight profile "
        "allows it (A/B the indexed 4-ary heap, the Dial bucket queue, "
        "and the unit-weight BFS); skips the end-to-end staticsim cases, "
        "which always auto-select; default: auto-select per topology",
    )
    bench_parser.add_argument(
        "--history-dir",
        default=None,
        help="append the report to this run-history directory "
        "(default: benchmarks/history)",
    )
    bench_parser.add_argument(
        "--no-history",
        action="store_true",
        help="do not append this run to the benchmark history",
    )
    bench_sub = bench_parser.add_subparsers(dest="bench_command")
    bench_compare = bench_sub.add_parser(
        "compare",
        help="per-benchmark speedup deltas between two recorded runs",
    )
    bench_compare.add_argument(
        "run_a",
        help="first run: a history filename/sha prefix, 'latest', or a "
        "path to any bench report JSON",
    )
    bench_compare.add_argument("run_b", help="second run (same forms)")
    bench_compare.add_argument(
        "--history-dir",
        dest="compare_history_dir",
        default=None,
        help="history directory to resolve prefixes in "
        "(default: benchmarks/history)",
    )

    churn_parser = subparsers.add_parser(
        "churn",
        help="drive the event-driven churn engine over a seeded event "
        "stream and report per-event maintenance bills (see "
        "docs/REPRODUCING.md for the command map)",
    )
    churn_parser.add_argument(
        "family",
        choices=sorted(_GENERATORS),
        help="topology family for the base graph",
    )
    churn_parser.add_argument("nodes", type=int, help="node count")
    churn_parser.add_argument(
        "--events", type=int, default=8, help="number of churn events"
    )
    churn_parser.add_argument("--seed", type=int, default=0)
    churn_parser.add_argument(
        "--mode",
        choices=["event", "replay"],
        default="event",
        help="event = incremental ChurnEngine (default); replay = seed-era "
        "full-reconvergence oracle (edge events only); both print the "
        "same bills",
    )
    churn_parser.add_argument(
        "--kinds",
        nargs="+",
        default=None,
        metavar="KIND",
        help="opt into a rich event stream with these kinds (edge-down, "
        "edge-up, edge-reweight, node-leave, node-join); default: the "
        "seed-era edge failure/recovery workload, comparable across "
        "both modes",
    )
    churn_parser.add_argument(
        "--events-per-tick",
        type=int,
        default=1,
        help="calendar event rate: events sharing one tick (rich streams)",
    )
    churn_parser.add_argument(
        "--allow-partition",
        action="store_true",
        help="let rich streams partition the graph (default streams keep "
        "the live nodes connected)",
    )
    churn_parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also write the per-event bills as deterministic JSON "
        "(timings excluded; used by the CI mode differential)",
    )

    resolve_parser = subparsers.add_parser(
        "resolve",
        help="serve a seeded Zipf/diurnal/flash lookup trace against the "
        "sharded name-resolution service over a converged nd-disco "
        "substrate and report latency/staleness/load (see "
        "docs/REPRODUCING.md for the command map)",
    )
    resolve_parser.add_argument(
        "family",
        choices=sorted(_GENERATORS),
        help="topology family for the substrate graph",
    )
    resolve_parser.add_argument("nodes", type=int, help="node count")
    resolve_parser.add_argument(
        "--lookups", type=int, default=100_000, help="total lookups in the trace"
    )
    resolve_parser.add_argument(
        "--duration", type=int, default=256, help="timeline length in ticks"
    )
    resolve_parser.add_argument("--seed", type=int, default=0)
    resolve_parser.add_argument(
        "--replicas", type=int, default=2, help="ring successors per name"
    )
    resolve_parser.add_argument(
        "--virtual-nodes", type=int, default=8, help="ring tokens per shard"
    )
    resolve_parser.add_argument(
        "--refresh-interval",
        type=int,
        default=16,
        help="soft-state refresh period t (records expire after 2t+1)",
    )
    resolve_parser.add_argument(
        "--zipf", type=float, default=0.9, help="popularity skew exponent"
    )
    resolve_parser.add_argument(
        "--diurnal",
        type=float,
        default=0.5,
        help="diurnal volume amplitude A in [0, 1)",
    )
    resolve_parser.add_argument(
        "--flash",
        nargs=3,
        type=float,
        default=None,
        metavar=("START", "END", "BOOST"),
        help="flash-crowd window: boost lookup volume in [START, END)",
    )
    resolve_parser.add_argument(
        "--churn-shards",
        type=int,
        default=0,
        help="crash this many shards mid-timeline (unannounced; copies "
        "lost) and rejoin them half a refresh later",
    )
    resolve_parser.add_argument(
        "--groups",
        action="store_true",
        help="serve from sloppy-group contacts before the ring",
    )
    resolve_parser.add_argument(
        "--deployment",
        type=float,
        default=None,
        help="deployment-size estimate handed to the sloppy grouping "
        "(default: the true node count; larger values shrink the groups, "
        "pushing more lookups to the ring -- at small n the honest "
        "estimate yields groups that swallow every lookup)",
    )
    resolve_parser.add_argument(
        "--cache-budget",
        type=int,
        default=1 << 20,
        help="router-cache byte budget in the serving process",
    )
    resolve_parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also write the digested report as deterministic JSON "
        "(timings excluded)",
    )

    substrate_parser = subparsers.add_parser(
        "substrate",
        help="converge routing substrates standalone -- multi-core, "
        "mmap/disk slab placement, per-phase timing and RSS (the "
        "large-n driver; see docs/REPRODUCING.md)",
    )
    substrate_parser.add_argument(
        "source",
        help="topology family (%s) or an edge-list path"
        % ", ".join(sorted(_GENERATORS)),
    )
    substrate_parser.add_argument(
        "nodes",
        type=int,
        nargs="?",
        default=None,
        help="node count (required with a generator family)",
    )
    substrate_parser.add_argument("--seed", type=int, default=0)
    substrate_parser.add_argument(
        "--protocols",
        nargs="+",
        default=["nd-disco", "s4"],
        choices=["nd-disco", "s4"],
        help="schemes to converge; when both are listed they share one "
        "substrate, exactly as StaticSimulation builds them",
    )
    substrate_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="fan the SPT / vicinity / ball phases over this many worker "
        "processes (byte-identical output for any worker count)",
    )
    substrate_parser.add_argument(
        "--threads",
        type=int,
        default=None,
        help="in-kernel pthread fan-out for the batched C entry points "
        "(default: REPRO_KERNEL_THREADS or the CPU count; 0 pins the "
        "serial per-source loop; byte-identical output for any width; "
        "ignored when --workers selects the process pool)",
    )
    substrate_parser.add_argument(
        "--storage",
        default=None,
        help='slab placement: "mmap" (anonymous mmap) or a directory path '
        "(file-backed slabs, mmap-attachable afterwards); default RAM "
        "arrays",
    )
    substrate_parser.add_argument(
        "--vicinity-storage",
        default=None,
        help="override --storage for the vicinity slabs (e.g. SPT slabs "
        "on disk, vicinity in anonymous mmap when neither medium fits "
        "everything)",
    )
    substrate_parser.add_argument(
        "--no-persist",
        action="store_true",
        help="skip finishing a --storage directory into a complete "
        "mmap-attachable slab artifact (implied when the vicinity slabs "
        "live on a different medium)",
    )
    substrate_parser.add_argument(
        "--routes",
        type=int,
        default=4,
        help="sampled routing sanity checks after convergence (0 skips)",
    )
    return parser


def _command_list() -> int:
    for experiment_id in EXPERIMENTS:
        print(experiment_id)
    return 0


def _command_run(args: argparse.Namespace) -> int:
    from repro.scenarios import registry

    selected = list(EXPERIMENTS) if args.all else list(args.experiments)
    if not selected:
        print("no experiments selected (pass ids or --all)", file=sys.stderr)
        return 2
    cache = None if args.no_cache else _cache_root(args)
    from repro.scenarios.engine import run_scenarios

    scale = default_scale()
    if args.topology_file is not None:
        import dataclasses

        from repro.graphs.ingest import available_formats

        if args.topology_format not in available_formats():
            print(
                f"unknown --topology-format {args.topology_format!r} "
                f"(registered: {', '.join(available_formats())})",
                file=sys.stderr,
            )
            return 2
        if not os.path.isfile(args.topology_file):
            print(
                f"--topology-file {args.topology_file}: no such file",
                file=sys.stderr,
            )
            return 2
        scale = dataclasses.replace(
            scale,
            topology_file=args.topology_file,
            topology_format=args.topology_format,
        )
    try:
        # run_scenarios resolves ids/aliases itself (planning happens
        # before any execution, so an unknown id fails fast).
        runs = run_scenarios(
            selected,
            scale=scale,
            workers=args.workers,
            json_dir=args.json_dir,
            cache=cache,
            echo=lambda message: print(message, file=sys.stderr),
        )
    except registry.UnknownScenarioError as error:
        print(str(error), file=sys.stderr)
        return 2
    for run in runs.values():
        print(run.report)
        print()
    return 0


def _cache_root(args: argparse.Namespace) -> str:
    return (
        args.cache_dir
        or os.environ.get("REPRO_CACHE_DIR")
        or DEFAULT_CACHE_DIR
    )


def _parse_size(text: str) -> int:
    """Parse a byte budget like ``1048576``, ``512K``, ``200M``, ``2G``."""
    units = {"K": 1024, "M": 1024**2, "G": 1024**3}
    text = text.strip()
    if text and text[-1].upper() in units:
        return int(float(text[:-1]) * units[text[-1].upper()])
    return int(text)


def _format_bytes(count: float) -> str:
    for unit in ("B", "KiB", "MiB"):
        if count < 1024:
            return f"{count:.1f} {unit}" if unit != "B" else f"{int(count)} B"
        count /= 1024
    return f"{count:.1f} GiB"


def _command_cache(args: argparse.Namespace) -> int:
    from repro.scenarios import lifecycle

    root = _cache_root(args)
    if args.cache_command == "stats":
        stats = lifecycle.cache_stats(root)
        rows = [
            [kind, entry["count"], _format_bytes(entry["bytes"])]
            for kind, entry in stats["kinds"].items()
        ]
        rows.append(["total", stats["count"], _format_bytes(stats["bytes"])])
        print(f"cache root: {root}")
        print(format_table(["kind", "artifacts", "bytes"], rows))
        if stats.get("raw_bytes"):
            ratio = stats["bytes"] / stats["raw_bytes"]
            print(
                f"compression: {_format_bytes(stats['bytes'])} stored / "
                f"{_format_bytes(stats['raw_bytes'])} raw "
                f"({ratio:.2f}x, {1.0 / ratio:.1f}:1)"
                if ratio > 0
                else "compression: n/a"
            )
        # Refresh the aggregate view whenever a root exists -- including
        # an emptied one, so a stale manifest never outlives its artifacts.
        if os.path.isdir(root):
            manifest = lifecycle.write_manifest(root)
            print(f"manifest refreshed: {manifest}")
        return 0
    if args.cache_command == "ls":
        artifacts = lifecycle.scan(root)
        if args.kind:
            artifacts = [a for a in artifacts if a.kind == args.kind]
        rows = [
            [
                info.kind,
                info.key[:16],
                _format_bytes(info.bytes),
                f"{info.age_s / 3600.0:.1f}h",
            ]
            for info in sorted(artifacts, key=lambda a: (a.kind, a.key))
        ]
        print(format_table(["kind", "key", "bytes", "last hit"], rows))
        return 0
    if args.cache_command == "clear":
        report = lifecycle.clear(root)
        print(
            f"removed {len(report.removed)} artifact(s), "
            f"{_format_bytes(report.removed_bytes)}"
        )
        if os.path.isdir(root):
            lifecycle.write_manifest(root)
        return 0
    if args.cache_command == "prune":
        if args.max_bytes is None and args.max_age_days is None:
            print(
                "prune needs --max-bytes and/or --max-age-days",
                file=sys.stderr,
            )
            return 2
        try:
            max_bytes = (
                _parse_size(args.max_bytes)
                if args.max_bytes is not None
                else None
            )
        except ValueError:
            print(f"bad --max-bytes {args.max_bytes!r}", file=sys.stderr)
            return 2
        report = lifecycle.prune(
            root,
            max_bytes=max_bytes,
            max_age_s=(
                args.max_age_days * 86400.0
                if args.max_age_days is not None
                else None
            ),
            dry_run=args.dry_run,
        )
        if args.dry_run:
            for info in report.removed:
                print(
                    f"would evict {info.kind}/{info.key[:16]} "
                    f"({_format_bytes(info.bytes)}, "
                    f"last hit {info.age_s / 3600.0:.1f}h ago)"
                )
            print(
                f"dry run: would prune {len(report.removed)} artifact(s), "
                f"{_format_bytes(report.removed_bytes)}; "
                f"{len(report.kept)} kept, {_format_bytes(report.kept_bytes)}"
            )
            return 0
        print(
            f"pruned {len(report.removed)} artifact(s), "
            f"{_format_bytes(report.removed_bytes)} freed; "
            f"{len(report.kept)} kept, {_format_bytes(report.kept_bytes)}"
        )
        lifecycle.write_manifest(root)
        return 0
    print(f"unknown cache command {args.cache_command!r}", file=sys.stderr)
    return 2  # pragma: no cover - argparse enforces the choices


def _command_scenarios(args: argparse.Namespace) -> int:
    from repro.scenarios import all_scenarios

    if args.scenarios_command == "list":
        scale = default_scale()
        rows = []
        for scenario in all_scenarios():
            shard_keys = scenario.shard_keys(scale)
            rows.append(
                [
                    scenario.scenario_id,
                    ",".join(scenario.family),
                    ",".join(scenario.protocols) or "-",
                    ",".join(scenario.metrics),
                    str(len(shard_keys)) if shard_keys else "-",
                    ",".join(scenario.aliases) or "-",
                ]
            )
        print(
            format_table(
                ["scenario", "families", "protocols", "metrics", "shards",
                 "aliases"],
                rows,
            )
        )
        return 0
    print(f"unknown scenarios command {args.scenarios_command!r}", file=sys.stderr)
    return 2  # pragma: no cover - argparse enforces the choices


def _command_ingest(args: argparse.Namespace) -> int:
    from repro.graphs import ingest

    if args.list_formats:
        rows = [
            [fmt.name, fmt.description]
            for fmt in sorted(ingest._FORMATS.values())
        ]
        print(format_table(["format", "description"], rows))
        return 0
    if args.path is None:
        print("ingest: dataset path required (or --list-formats)", file=sys.stderr)
        return 2
    if args.fmt not in ingest.available_formats():
        print(
            f"unknown format {args.fmt!r} "
            f"(registered: {', '.join(ingest.available_formats())})",
            file=sys.stderr,
        )
        return 2
    params = {}
    if args.delay is not None:
        params["delay"] = args.delay
    if args.internal_delay is not None:
        params["internal_delay"] = args.internal_delay
    if args.external_delay is not None:
        params["external_delay"] = args.external_delay

    from repro.scenarios.cache import ArtifactCache, activated

    cache = None if args.no_cache else ArtifactCache(_cache_root(args))
    try:
        with activated(cache):
            topology = ingest.ingest_topology(
                args.path,
                fmt=args.fmt,
                name=args.name,
                largest_component=args.largest_component,
                **params,
            )
    except OSError as error:
        print(f"cannot read {args.path}: {error}", file=sys.stderr)
        return 2
    except (ValueError, TypeError) as error:
        print(f"ingest failed: {error}", file=sys.stderr)
        return 2
    digest = ingest.file_digest(args.path)
    profile = topology.weight_profile()
    csr = topology.csr()
    print(
        f"{topology.name}: {topology.num_nodes} nodes / "
        f"{topology.num_edges} edges  (format={args.fmt}, "
        f"sha256={digest[:16]})"
    )
    weights = "unit" if profile.unit else (
        f"quantized (quantum {profile.quantum:g})" if profile.bucket_ok
        else "general"
    )
    print(f"weights: {weights}; kernel: {csr.kernel} ({csr.tier} tier)")
    if args.largest_component:
        print("largest connected component kept")
    if cache is not None:
        verb = "attached from" if cache.hits else "stored in"
        print(f"artifact {verb} cache ({cache.root})")
    return 0


def _command_generate(args: argparse.Namespace) -> int:
    generator = _GENERATORS[args.family]
    topology = generator(args.nodes, seed=args.seed)
    write_edge_list(topology, args.out)
    print(
        f"wrote {topology.num_nodes} nodes / {topology.num_edges} edges to {args.out}"
    )
    return 0


def _command_profile(args: argparse.Namespace) -> int:
    topology = read_edge_list(args.path)
    profile = profile_topology(topology, seed=args.seed)
    rows = [
        ["nodes", profile.num_nodes],
        ["edges", profile.num_edges],
        ["average degree", profile.average_degree],
        ["max degree", profile.max_degree],
        ["mean path length", profile.path_length_summary.mean],
        ["estimated diameter", profile.estimated_diameter],
    ]
    print(format_table(["property", "value"], rows, float_format="{:.2f}"))
    return 0


def _command_compare(args: argparse.Namespace) -> int:
    topology = read_edge_list(args.path)
    if not topology.is_connected():
        topology, _ = topology.largest_component_subgraph()
        print(
            f"note: using the largest connected component ({topology.num_nodes} nodes)"
        )
    simulation = StaticSimulation(topology, args.protocols, seed=args.seed)
    results = simulation.run(
        measure_state_flag=True,
        measure_stretch_flag=True,
        pair_sample=args.pairs,
    )
    rows = []
    for name in sorted(results.state):
        state = results.state[name].entry_summary
        stretch = results.stretch[name]
        rows.append(
            [
                name,
                state.mean,
                state.maximum,
                stretch.first_summary.mean,
                stretch.later_summary.mean,
            ]
        )
    print(
        format_table(
            ["protocol", "state mean", "state max", "first stretch", "later stretch"],
            rows,
            float_format="{:.2f}",
        )
    )
    return 0


def _command_bench(args: argparse.Namespace) -> int:
    if getattr(args, "bench_command", None) == "compare":
        return _command_bench_compare(args)
    from repro.graphs import _ckernels
    from repro.perf import history
    from repro.perf.kernel_bench import bench_kernels, write_bench_json

    # A bench run (and a forced --kernel in particular) wants the compiled
    # tier; if the on-demand compile failed, say so once instead of silently
    # timing the pure-Python fallback.
    _ckernels.warn_if_unavailable(
        f"bench --kernel {args.kernel}" if args.kernel else "bench run"
    )
    # Validate the output path before spending minutes on the benchmarks,
    # without leaving an empty file behind if the run later fails.
    existed = os.path.exists(args.out)
    try:
        with open(args.out, "a", encoding="utf-8"):
            pass
    except OSError as error:
        print(f"cannot write {args.out}: {error}", file=sys.stderr)
        return 2
    if not existed:
        os.remove(args.out)
    report = bench_kernels(
        quick=args.quick, workers=args.workers, kernel=args.kernel
    )
    rows = []
    for name, entry in report["benchmarks"].items():
        rows.append(
            [name, entry["before_s"], entry["after_s"], entry["speedup"]]
        )
    print(
        format_table(
            ["benchmark", "before (s)", "after (s)", "speedup"],
            rows,
            float_format="{:.4f}",
        )
    )
    write_bench_json(report, args.out)
    print(f"wrote {args.out}")
    if not args.no_history:
        try:
            record = history.record_run(
                report, args.history_dir or history.DEFAULT_HISTORY_DIR
            )
            print(f"recorded {record}")
        except OSError as error:
            print(f"history not recorded: {error}", file=sys.stderr)
    return 0


def _command_bench_compare(args: argparse.Namespace) -> int:
    from repro.perf import history

    directory = args.compare_history_dir or history.DEFAULT_HISTORY_DIR
    try:
        run_a = history.resolve_run(args.run_a, directory)
        run_b = history.resolve_run(args.run_b, directory)
    except (OSError, ValueError) as error:
        print(str(error), file=sys.stderr)
        return 2
    for label, run in (("A", run_a), ("B", run_b)):
        report = run["report"]
        sha = run["git"].get("sha") or "?"
        print(
            f"{label}: {os.path.basename(run['path'])}  "
            f"sha={sha[:12]}  generated={report.get('generated', '?')}  "
            f"quick={bool(report.get('quick'))}"
        )
    delta = history.compare_reports(run_a["report"], run_b["report"])
    if delta["quick_mismatch"]:
        print(
            "note: one run is --quick -- workloads differ, compare the "
            "speedup columns only",
            file=sys.stderr,
        )
    if delta.get("thread_mismatch"):
        threads_a, threads_b = delta["thread_counts"]
        print(
            "note: runs used different kernel thread counts "
            f"(A={threads_a}, B={threads_b}) -- the threaded families' "
            "wall clocks are not like-for-like",
            file=sys.stderr,
        )
    rows = [
        [
            row["name"],
            row["a_after_s"],
            row["b_after_s"],
            f"x{row['after_ratio']:.3f}" if row["after_ratio"] else "-",
            row["a_speedup"],
            row["b_speedup"],
            f"{row['speedup_delta']:+.3f}",
        ]
        for row in delta["common"]
    ]
    print(
        format_table(
            [
                "benchmark",
                "A after (s)",
                "B after (s)",
                "A/B",
                "A speedup",
                "B speedup",
                "delta",
            ],
            rows,
            float_format="{:.4f}",
        )
    )
    for key, label in (("only_a", "only in A"), ("only_b", "only in B")):
        if delta[key]:
            print(f"{label}: {', '.join(delta[key])}")
    return 0


def _memory_kb() -> tuple[int, int]:
    """Current and peak resident set size in KiB (Linux; zeros elsewhere)."""
    rss = peak = 0
    try:
        with open("/proc/self/status", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    rss = int(line.split()[1])
                elif line.startswith("VmHWM:"):
                    peak = int(line.split()[1])
    except (OSError, ValueError, IndexError):
        return 0, 0
    return rss, peak


def _command_substrate(args: argparse.Namespace) -> int:
    import time

    from repro.core.nddisco import NDDiscoRouting
    from repro.graphs.sampling import sample_pairs
    from repro.protocols.registry import build_scheme

    if args.source in _GENERATORS:
        if args.nodes is None:
            print(
                f"substrate {args.source}: node count required",
                file=sys.stderr,
            )
            return 2
        topology = _GENERATORS[args.source](args.nodes, seed=args.seed)
    else:
        try:
            topology = read_edge_list(args.source)
        except OSError as error:
            print(f"cannot read {args.source}: {error}", file=sys.stderr)
            return 2
        if not topology.is_connected():
            topology, _ = topology.largest_component_subgraph()
            print(
                "note: using the largest connected component "
                f"({topology.num_nodes} nodes)"
            )
    protocols = [name.strip().lower() for name in args.protocols]
    placement = []
    if args.storage:
        placement.append(f"storage={args.storage}")
    if args.vicinity_storage:
        placement.append(f"vicinity-storage={args.vicinity_storage}")
    print(
        f"{topology.name}: {topology.num_nodes} nodes, "
        f"{topology.num_edges} edges"
        + (f"  [{' '.join(placement)}]" if placement else "")
    )
    persist = not args.no_persist and (
        args.vicinity_storage is None
        or args.vicinity_storage == args.storage
    )
    started = time.perf_counter()
    schemes: dict[str, object] = {}
    nddisco: NDDiscoRouting | None = None
    if "nd-disco" in protocols:
        stats: dict = {}
        nddisco = NDDiscoRouting(
            topology,
            seed=args.seed,
            workers=args.workers,
            threads=args.threads,
            storage=args.storage,
            vicinity_storage=args.vicinity_storage,
            persist_storage=persist,
            build_stats=stats,
            build_progress=lambda line: print(f"  nd-disco: {line}"),
        )
        schemes["nd-disco"] = nddisco
        rss, peak = _memory_kb()
        print(
            f"nd-disco converged: {len(nddisco.landmarks)} landmarks, "
            f"{stats.get('slab_bytes', 0) / 1024**2:.0f} MiB slabs, "
            f"{time.perf_counter() - started:.1f}s elapsed, "
            f"rss {rss / 1024:.0f} MiB (peak {peak / 1024:.0f} MiB)"
        )
    if "s4" in protocols:
        s4_started = time.perf_counter()
        options: dict[str, object] = {
            "workers": args.workers,
            "threads": args.threads,
        }
        if nddisco is not None:
            # Same landmark set and shared substrate, exactly as
            # StaticSimulation couples the two schemes.
            options["landmarks"] = nddisco.landmarks
            options["substrate"] = nddisco
        elif args.storage:
            options["storage"] = (
                args.storage
                if args.storage == "mmap"
                else os.path.join(args.storage, "s4")
            )
        schemes["s4"] = build_scheme(
            "s4", topology, seed=args.seed, **options
        )
        rss, peak = _memory_kb()
        print(
            f"s4 converged: {time.perf_counter() - s4_started:.1f}s, "
            f"rss {rss / 1024:.0f} MiB (peak {peak / 1024:.0f} MiB)"
        )
    if args.routes > 0:
        for source, target in sample_pairs(
            topology, args.routes, seed=args.seed + 1
        ):
            for name, scheme in schemes.items():
                result = scheme.later_packet_route(source, target)
                assert result.path[0] == source
                assert result.path[-1] == target
                print(
                    f"  route {source}->{target} [{name}]: "
                    f"{len(result.path) - 1} hops via {result.mechanism}"
                )
    rss, peak = _memory_kb()
    print(
        f"done: {time.perf_counter() - started:.1f}s total, "
        f"peak rss {peak / 1024:.0f} MiB"
    )
    return 0


def _command_churn(args: argparse.Namespace) -> int:
    import json
    import time

    from repro.core.landmarks import select_landmarks
    from repro.core.nddisco import NDDiscoRouting
    from repro.dynamics import (
        EVENT_KINDS,
        ChurnEngine,
        events_from_workload,
        generate_churn_workload,
        generate_event_stream,
        maintenance_cost,
    )
    from repro.dynamics.churn import apply_event

    if args.kinds is not None:
        unknown = [kind for kind in args.kinds if kind not in EVENT_KINDS]
        if unknown:
            print(f"unknown event kinds: {', '.join(unknown)}", file=sys.stderr)
            return 2
        if args.mode == "replay":
            print(
                "--kinds requires --mode event (the replay oracle only "
                "models edge failure/recovery)",
                file=sys.stderr,
            )
            return 2

    topology = _GENERATORS[args.family](args.nodes, seed=args.seed)
    landmarks = select_landmarks(topology.num_nodes, seed=args.seed)
    if args.kinds is None:
        workload = generate_churn_workload(
            topology, num_events=args.events, seed=args.seed + 17
        )
        events = events_from_workload(
            workload.events, events_per_tick=args.events_per_tick
        )
    else:
        workload = None
        events = generate_event_stream(
            topology,
            num_events=args.events,
            seed=args.seed + 17,
            kinds=tuple(args.kinds),
            events_per_tick=args.events_per_tick,
            preserve_connectivity=not args.allow_partition,
        )
    print(
        f"{topology.name}: {topology.num_nodes} nodes, "
        f"{topology.num_edges} edges, {len(landmarks)} landmarks, "
        f"{len(events)} events, mode={args.mode}"
    )

    started = time.perf_counter()
    if args.mode == "replay":
        state = NDDiscoRouting(topology, seed=args.seed, landmarks=landmarks)
        current = topology
        costs = []
        for event in workload.events:
            current = apply_event(current, event)
            next_state = NDDiscoRouting(
                current, seed=args.seed, landmarks=landmarks
            )
            costs.append(maintenance_cost(state, next_state))
            state = next_state
        applied = [True] * len(costs)
    else:
        engine = ChurnEngine(topology, seed=args.seed, landmarks=landmarks)
        reports = engine.run(events)
        costs = [report.cost for report in reports]
        applied = [report.applied for report in reports]
    elapsed = time.perf_counter() - started

    rows = []
    for index, (event, cost) in enumerate(zip(events, costs)):
        target = f"{event.u}-{event.v}" if event.v >= 0 else str(event.u)
        rows.append(
            [
                index,
                event.tick,
                event.kind if applied[index] else f"{event.kind} (no-op)",
                target,
                cost.addresses_changed,
                cost.vicinity_entries_changed,
                cost.landmark_entries_changed,
                cost.total_incremental_entries,
            ]
        )
    print(
        format_table(
            [
                "event",
                "tick",
                "kind",
                "target",
                "addr",
                "vicinity",
                "landmark",
                "total",
            ],
            rows,
            float_format="{:.0f}",
        )
    )
    total = sum(cost.total_incremental_entries for cost in costs)
    rate = len(events) / elapsed if elapsed > 0 else float("inf")
    print(
        f"total incremental entries: {total}  "
        f"({elapsed:.2f}s, {rate:.1f} events/s)"
    )
    if args.json:
        payload = {
            "schema": "repro-churn-bills/v1",
            "family": args.family,
            "nodes": topology.num_nodes,
            "seed": args.seed,
            "events": [
                {
                    "tick": event.tick,
                    "kind": event.kind,
                    "u": event.u,
                    "v": event.v,
                    "weight": event.weight,
                    "applied": applied[index],
                    "cost": {
                        "addresses_changed": cost.addresses_changed,
                        "resolution_updates": cost.resolution_updates,
                        "dissemination_messages": cost.dissemination_messages,
                        "vicinity_entries_changed": cost.vicinity_entries_changed,
                        "landmark_entries_changed": cost.landmark_entries_changed,
                        "total_incremental_entries": cost.total_incremental_entries,
                    },
                }
                for index, (event, cost) in enumerate(zip(events, costs))
            ],
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"bills written to {args.json}")
    return 0


def _command_resolve(args: argparse.Namespace) -> int:
    import json
    import time

    from repro.core.nddisco import NDDiscoRouting
    from repro.core.sloppy_groups import SloppyGrouping
    from repro.dynamics.stream import DynEvent
    from repro.resolution import (
        GroupContactIndex,
        generate_lookup_workload,
        run_traffic,
    )
    from repro.utils.distributions import summarize

    if args.churn_shards < 0:
        print("--churn-shards must be >= 0", file=sys.stderr)
        return 2

    started = time.perf_counter()
    topology = _GENERATORS[args.family](args.nodes, seed=args.seed)
    routing = NDDiscoRouting(topology, seed=args.seed)
    built = time.perf_counter() - started
    num_shards = len(routing.landmarks)
    print(
        f"{topology.name}: {topology.num_nodes} nodes, "
        f"{topology.num_edges} edges, {num_shards} shards "
        f"({args.replicas} replicas x {args.virtual_nodes} vnodes), "
        f"substrate {built:.2f}s"
    )

    flash = None
    if args.flash is not None:
        flash = (int(args.flash[0]), int(args.flash[1]), args.flash[2])
    workload = generate_lookup_workload(
        topology.num_nodes,
        num_lookups=args.lookups,
        duration_ticks=args.duration,
        seed=args.seed,
        zipf_exponent=args.zipf,
        diurnal_amplitude=args.diurnal,
        flash=flash,
    )

    events: list[DynEvent] = []
    if args.churn_shards:
        victims = sorted(routing.landmarks)[: args.churn_shards]
        if args.churn_shards > len(victims):
            print(
                f"--churn-shards {args.churn_shards} exceeds the "
                f"{len(victims)} shards available",
                file=sys.stderr,
            )
            return 2
        period = args.duration // (len(victims) + 1)
        if period < 1:
            print("timeline too short for --churn-shards", file=sys.stderr)
            return 2
        for index, shard in enumerate(victims):
            down = period * (index + 1)
            up = min(down + max(args.refresh_interval // 2, 1), args.duration - 1)
            events.append(DynEvent(tick=down, kind="node-leave", u=shard))
            if up > down:
                events.append(DynEvent(tick=up, kind="node-join", u=shard))

    contacts = None
    if args.groups:
        deployment = (
            args.deployment
            if args.deployment is not None
            else float(topology.num_nodes)
        )
        contacts = GroupContactIndex(
            SloppyGrouping(routing.names, deployment)
        )

    started = time.perf_counter()
    report = run_traffic(
        routing,
        workload,
        replicas=args.replicas,
        virtual_nodes=args.virtual_nodes,
        refresh_interval=args.refresh_interval,
        shard_events=events,
        contacts=contacts,
        cache_budget=args.cache_budget,
    )
    elapsed = time.perf_counter() - started
    rate = report.lookups / elapsed if elapsed > 0 else float("inf")

    latency = summarize(report.latencies).as_dict()
    rows = [["latency", *(f"{latency[k]:.3f}" for k in
                          ("mean", "median", "p95", "p99", "max"))]]
    if report.staleness:
        stale = summarize(report.staleness).as_dict()
        rows.append(["staleness", *(f"{stale[k]:.3f}" for k in
                                    ("mean", "median", "p95", "p99", "max"))])
    if report.hops:
        hop = summarize(report.hops).as_dict()
        rows.append(["hops", *(f"{hop[k]:.3f}" for k in
                               ("mean", "median", "p95", "p99", "max"))])
    print(
        f"{report.lookups} lookups over {workload.duration_ticks} ticks: "
        f"{report.group_hits} group hits, {report.ring_hits} ring hits, "
        f"{report.misses} misses"
    )
    print(format_table(["metric", "mean", "p50", "p95", "p99", "max"], rows))
    loads = sorted(report.shard_loads.values(), reverse=True)
    if loads:
        mean_load = sum(loads) / len(loads)
        print(
            f"shard load: hottest {loads[0]}, mean {mean_load:.1f} "
            f"(imbalance {loads[0] / mean_load:.2f}x over "
            f"{len(loads)} serving shards)"
        )
    stats = report.cache_stats
    print(
        f"router cache: {stats['hits']} hits, {stats['misses']} misses, "
        f"{stats['evictions']} evictions, {stats['bytes']}/"
        f"{stats['max_bytes']} bytes"
    )
    print(
        f"expired {report.expired_records} records, "
        f"{len(report.rebalances)} rebalances  "
        f"({elapsed:.2f}s, {rate:.0f} lookups/s)"
    )
    if args.json:
        payload = {
            "schema": "repro-resolve-report/v1",
            "family": args.family,
            "nodes": topology.num_nodes,
            "seed": args.seed,
            "shards": num_shards,
            "replicas": args.replicas,
            "virtual_nodes": args.virtual_nodes,
            "refresh_interval": args.refresh_interval,
            "lookups": report.lookups,
            "group_hits": report.group_hits,
            "ring_hits": report.ring_hits,
            "misses": report.misses,
            "latency": latency,
            "staleness": (
                summarize(report.staleness).as_dict() if report.staleness else None
            ),
            "hops": summarize(report.hops).as_dict() if report.hops else None,
            "shard_loads": {
                str(shard): count
                for shard, count in sorted(report.shard_loads.items())
            },
            "expired_records": report.expired_records,
            "rebalances": len(report.rebalances),
            "cache_stats": dict(sorted(report.cache_stats.items())),
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"report written to {args.json}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        return _command_list()
    if args.command == "run":
        return _command_run(args)
    if args.command == "cache":
        return _command_cache(args)
    if args.command == "scenarios":
        return _command_scenarios(args)
    if args.command == "ingest":
        return _command_ingest(args)
    if args.command == "generate":
        return _command_generate(args)
    if args.command == "profile":
        return _command_profile(args)
    if args.command == "compare":
        return _command_compare(args)
    if args.command == "bench":
        return _command_bench(args)
    if args.command == "substrate":
        return _command_substrate(args)
    if args.command == "churn":
        return _command_churn(args)
    if args.command == "resolve":
        return _command_resolve(args)
    parser.error(f"unknown command {args.command!r}")
    return 2  # pragma: no cover - parser.error raises


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
