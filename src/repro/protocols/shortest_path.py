"""Shortest-path routing: the stretch-1, Ω(n)-state baseline.

Traditional routing protocols (link state, distance vector, path vector) all
converge to shortest paths and all store Ω(n) entries per node (§1).  This
scheme is the stretch/congestion baseline in Figs. 4, 5 and 10, and the state
baseline everywhere: every node holds one entry per destination.
"""

from __future__ import annotations

from repro.graphs.shortest_paths import dijkstra, extract_path
from repro.graphs.topology import Topology
from repro.protocols.base import RouteResult, RoutingScheme

__all__ = ["ShortestPathRouting"]


class ShortestPathRouting(RoutingScheme):
    """Converged shortest-path routing (one entry per destination per node).

    Routes are computed lazily with Dijkstra and cached per source, since the
    congestion workload routes from every node exactly once.
    """

    name = "Shortest-Path"

    def __init__(self, topology: Topology, *, seed: int = 0) -> None:
        super().__init__(topology)
        # The seed is accepted for interface uniformity; shortest-path
        # routing has no randomized choices.
        self._seed = seed
        self._cache: dict[int, tuple[dict[int, float], dict[int, int]]] = {}

    def _tree(self, source: int) -> tuple[dict[int, float], dict[int, int]]:
        if source not in self._cache:
            self._cache[source] = dijkstra(self._topology, source)
        return self._cache[source]

    def state_entries(self, node: int) -> int:
        """One forwarding entry per other destination."""
        self._check_endpoints(node, node)
        return self._topology.num_nodes - 1

    def state_bytes(self, node: int, *, name_bytes: int = 4) -> float:
        """Each entry holds a destination name plus a one-byte next hop."""
        return self.state_entries(node) * (name_bytes + 1.0)

    def shortest_path(self, source: int, target: int) -> list[int]:
        """Return one shortest path from ``source`` to ``target``."""
        self._check_endpoints(source, target)
        if source == target:
            return [source]
        _, predecessors = self._tree(source)
        return extract_path(predecessors, source, target)

    def distance(self, source: int, target: int) -> float:
        """Return the shortest-path distance between the endpoints."""
        self._check_endpoints(source, target)
        if source == target:
            return 0.0
        distances, _ = self._tree(source)
        return distances[target]

    def first_packet_route(self, source: int, target: int) -> RouteResult:
        """All packets follow the shortest path."""
        return RouteResult(
            path=tuple(self.shortest_path(source, target)), mechanism="shortest-path"
        )

    def later_packet_route(self, source: int, target: int) -> RouteResult:
        """All packets follow the shortest path."""
        return self.first_packet_route(source, target)
