"""Virtual Ring Routing (Caesar et al., SIGCOMM 2006).

VRR organises nodes into a virtual ring ordered by their (flat) identifiers
and, for each node, sets up *vset paths* -- physical routes to its ``r``
virtual neighbours (the r/2 closest identifiers on each side of the ring).
Every node on a vset path stores a routing-table entry for the path's
endpoints.  Packets are forwarded greedily: each node picks, among all
endpoints it has entries for (plus its physical neighbours), the one whose
identifier is closest to the destination's, and forwards along the stored
path toward it.

The paper's critique, which this model reproduces (§3, §5):

* **state** -- path entries accumulate on "central" nodes, so some nodes
  carry far more state than the average (worst case Θ(n²) in theory);
* **stretch** -- greedy forwarding over the virtual ring provides no stretch
  bound, and stretch is high in practice, especially with link latencies.

Model simplifications (documented; they preserve both phenomena):

* The joining order is a random connected growth from a seed node, as in the
  paper's methodology ("we start with a random node and grow the connected
  component of joined nodes outward").
* A joining node routes its path-setup requests greedily over the state
  present at join time (falling back to a physical shortest path when greedy
  forwarding fails early in the bootstrap), which is how setup messages
  travel in VRR and is what makes converged state join-order dependent.
* When a later join displaces a node from another node's vset, the stale
  path is torn down (its entries are removed), as VRR's maintenance does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.graphs.shortest_paths import dijkstra, extract_path
from repro.graphs.topology import Topology
from repro.naming.hashspace import circular_distance
from repro.naming.names import FlatName, name_for_node
from repro.protocols.base import RouteResult, RoutingScheme
from repro.utils.randomness import make_rng

__all__ = ["VirtualRingRouting"]


@dataclass
class _VsetPath:
    """One installed vset path between two endpoint nodes."""

    path_id: int
    endpoint_a: int
    endpoint_b: int
    nodes: list[int]
    active: bool = True


class VirtualRingRouting(RoutingScheme):
    """Converged-state model of VRR with ``r`` virtual neighbours per node.

    Parameters
    ----------
    topology:
        The (connected) network.
    seed:
        Seed controlling the join order and identifier assignment.
    vset_size:
        The number of virtual neighbours r (4 in the paper's evaluation,
        i.e. 2 on each side of the ring).
    names:
        Flat names whose hashes are the ring identifiers; default synthetic
        names.
    """

    name = "VRR"

    def __init__(
        self,
        topology: Topology,
        *,
        seed: int = 0,
        vset_size: int = 4,
        names: Sequence[FlatName] | None = None,
    ) -> None:
        super().__init__(topology)
        if vset_size < 2 or vset_size % 2 != 0:
            raise ValueError(f"vset_size must be a positive even number, got {vset_size}")
        n = topology.num_nodes
        self._vset_size = vset_size
        self._names = (
            list(names) if names is not None else [name_for_node(v) for v in range(n)]
        )
        if len(self._names) != n:
            raise ValueError(f"names must have exactly {n} entries")
        self._ids = [name.hash_value for name in self._names]

        # Routing table: per node, endpoint -> {next_hop: refcount}.
        self._table: list[dict[int, dict[int, int]]] = [dict() for _ in range(n)]
        self._paths: dict[int, _VsetPath] = {}
        self._paths_through: list[set[int]] = [set() for _ in range(n)]
        self._vsets: list[set[int]] = [set() for _ in range(n)]
        self._next_path_id = 0
        self._joined: list[int] = []
        self._joined_set: set[int] = set()

        self._join_all(seed)

    # -- construction ----------------------------------------------------------

    def _join_all(self, seed: int) -> None:
        """Join every node in a random connected-growth order."""
        rng = make_rng(seed, "vrr-join-order")
        n = self._topology.num_nodes
        start = rng.randrange(n)
        frontier: list[int] = [start]
        visited = {start}
        order: list[int] = []
        while frontier:
            index = rng.randrange(len(frontier))
            node = frontier.pop(index)
            order.append(node)
            for neighbor in self._topology.neighbors(node):
                if neighbor not in visited:
                    visited.add(neighbor)
                    frontier.append(neighbor)
        for node in order:
            self._join(node)

    def _ring_neighbors_among(self, node: int, candidates: set[int]) -> set[int]:
        """The r/2 closest candidates on each side of ``node`` in id space."""
        if not candidates:
            return set()
        half = self._vset_size // 2
        node_id = self._ids[node]
        clockwise = sorted(
            candidates,
            key=lambda other: (self._ids[other] - node_id) % (1 << 64) or (1 << 64),
        )
        counter = sorted(
            candidates,
            key=lambda other: (node_id - self._ids[other]) % (1 << 64) or (1 << 64),
        )
        selected = set(clockwise[:half]) | set(counter[:half])
        return selected

    def _join(self, node: int) -> None:
        """Join ``node``: set up vset paths to its virtual neighbours."""
        if not self._joined:
            self._joined.append(node)
            self._joined_set.add(node)
            return
        targets = self._ring_neighbors_among(node, self._joined_set)
        self._joined.append(node)
        self._joined_set.add(node)
        for target in sorted(targets, key=lambda t: self._ids[t]):
            self._setup_path(node, target)
            self._update_vset(target, node)
        self._vsets[node] |= targets

    def _update_vset(self, existing: int, newcomer: int) -> None:
        """Let ``existing`` adopt ``newcomer`` into its vset, evicting if needed."""
        candidates = (self._vsets[existing] | {newcomer}) & self._joined_set
        candidates.discard(existing)
        new_vset = self._ring_neighbors_among(existing, candidates)
        evicted = self._vsets[existing] - new_vset
        self._vsets[existing] = new_vset
        for old in evicted:
            self._teardown_paths_between(existing, old)

    # -- path management --------------------------------------------------------

    def _setup_path(self, source: int, target: int) -> None:
        """Install a vset path between ``source`` and ``target``."""
        if source == target:
            return
        path = self._route_for_setup(source, target)
        path_id = self._next_path_id
        self._next_path_id += 1
        record = _VsetPath(
            path_id=path_id, endpoint_a=source, endpoint_b=target, nodes=path
        )
        self._paths[path_id] = record
        for index, hop in enumerate(path):
            self._paths_through[hop].add(path_id)
            if index > 0:
                self._add_table_entry(hop, source, path[index - 1])
            if index < len(path) - 1:
                self._add_table_entry(hop, target, path[index + 1])

    def _teardown_paths_between(self, a: int, b: int) -> None:
        """Remove any active vset paths between endpoints ``a`` and ``b``."""
        stale = [
            record
            for record in self._paths.values()
            if record.active
            and {record.endpoint_a, record.endpoint_b} == {a, b}
        ]
        for record in stale:
            record.active = False
            path = record.nodes
            for index, hop in enumerate(path):
                self._paths_through[hop].discard(record.path_id)
                if index > 0:
                    self._remove_table_entry(hop, record.endpoint_a, path[index - 1])
                if index < len(path) - 1:
                    self._remove_table_entry(hop, record.endpoint_b, path[index + 1])

    def _add_table_entry(self, node: int, endpoint: int, next_hop: int) -> None:
        hops = self._table[node].setdefault(endpoint, {})
        hops[next_hop] = hops.get(next_hop, 0) + 1

    def _remove_table_entry(self, node: int, endpoint: int, next_hop: int) -> None:
        hops = self._table[node].get(endpoint)
        if not hops or next_hop not in hops:
            return
        hops[next_hop] -= 1
        if hops[next_hop] <= 0:
            del hops[next_hop]
        if not hops:
            del self._table[node][endpoint]

    def _route_for_setup(self, source: int, target: int) -> list[int]:
        """Path a setup request takes from ``source`` to ``target``.

        Greedy VRR forwarding over the current state, starting from the
        joining node's physical neighbourhood; falls back to the physical
        shortest path when greedy forwarding cannot make progress (which
        happens early in the bootstrap when little state exists).
        """
        greedy = self._greedy_route(source, target, restrict_to_joined=True)
        if greedy is not None:
            return greedy
        return self._physical_shortest_path(source, target)

    def _physical_shortest_path(self, source: int, target: int) -> list[int]:
        _, parents = dijkstra(self._topology, source, targets=[target])
        return extract_path(parents, source, target)

    # -- greedy forwarding -------------------------------------------------------

    def _known_endpoints(self, node: int, *, restrict_to_joined: bool) -> set[int]:
        """Endpoints ``node`` can make progress toward: table entries + neighbours."""
        endpoints = set(self._table[node].keys())
        for neighbor in self._topology.neighbors(node):
            if not restrict_to_joined or neighbor in self._joined_set:
                endpoints.add(neighbor)
        endpoints.discard(node)
        return endpoints

    def _greedy_route(
        self, source: int, target: int, *, restrict_to_joined: bool = False
    ) -> list[int] | None:
        """Greedy forwarding in identifier space; None if it fails."""
        if source == target:
            return [source]
        target_id = self._ids[target]
        path = [source]
        current = source
        max_hops = 4 * self._topology.num_nodes + 16
        visited_states: set[tuple[int, int]] = set()
        while current != target and len(path) <= max_hops:
            endpoints = self._known_endpoints(
                current, restrict_to_joined=restrict_to_joined
            )
            if target in endpoints:
                chosen = target
            elif endpoints:
                chosen = min(
                    endpoints,
                    key=lambda e: (circular_distance(self._ids[e], target_id), e),
                )
                # Require strict progress relative to the current node.
                if circular_distance(self._ids[chosen], target_id) >= circular_distance(
                    self._ids[current], target_id
                ):
                    return None
            else:
                return None
            next_hop = self._next_hop_toward(current, chosen)
            if next_hop is None:
                return None
            state = (current, next_hop)
            if state in visited_states:
                return None
            visited_states.add(state)
            path.append(next_hop)
            current = next_hop
        if current != target:
            return None
        return path

    def _next_hop_toward(self, node: int, endpoint: int) -> int | None:
        """Next physical hop from ``node`` toward ``endpoint``."""
        if self._topology.has_edge(node, endpoint):
            return endpoint
        hops = self._table[node].get(endpoint)
        if not hops:
            return None
        return min(hops)

    # -- accessors ----------------------------------------------------------------

    @property
    def vset_size(self) -> int:
        """The configured number of virtual neighbours r."""
        return self._vset_size

    def vset_of(self, node: int) -> set[int]:
        """The node's current virtual neighbour set."""
        return set(self._vsets[node])

    def active_paths(self) -> list[tuple[int, int, list[int]]]:
        """All active vset paths as (endpoint_a, endpoint_b, node path)."""
        return [
            (record.endpoint_a, record.endpoint_b, list(record.nodes))
            for record in self._paths.values()
            if record.active
        ]

    # -- state accounting -----------------------------------------------------------

    def state_entries(self, node: int) -> int:
        """Routing entries: one per active vset path through the node, plus neighbours."""
        self._check_endpoints(node, node)
        return len(self._paths_through[node]) + self._topology.degree(node)

    def state_bytes(self, node: int, *, name_bytes: int = 4) -> float:
        """Each path entry holds two endpoint names and two next hops."""
        path_entries = len(self._paths_through[node])
        neighbor_entries = self._topology.degree(node)
        return path_entries * (2.0 * name_bytes + 2.0) + neighbor_entries * (
            name_bytes + 1.0
        )

    # -- routing ---------------------------------------------------------------------

    def route(self, source: int, target: int) -> RouteResult:
        """Greedy VRR forwarding from ``source`` to ``target``."""
        self._check_endpoints(source, target)
        if source == target:
            return RouteResult(path=(source,), mechanism="self")
        greedy = self._greedy_route(source, target)
        if greedy is not None:
            return RouteResult(path=tuple(greedy), mechanism="greedy")
        # Greedy forwarding failed (local minimum); VRR would repair the ring
        # and retry.  We report the failure but still return the physical
        # shortest path so stretch/congestion accounting has a route, and we
        # flag it via the mechanism label.
        fallback = self._physical_shortest_path(source, target)
        return RouteResult(path=tuple(fallback), mechanism="greedy-failure", delivered=False)

    def first_packet_route(self, source: int, target: int) -> RouteResult:
        """VRR has no handshake: all packets use greedy forwarding."""
        return self.route(source, target)

    def later_packet_route(self, source: int, target: int) -> RouteResult:
        """Same as the first packet."""
        return self.route(source, target)
