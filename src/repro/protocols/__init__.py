"""Routing protocols: the common interface and the baseline schemes.

The paper evaluates five protocols (§5.1): Disco, NDDisco, S4, VRR, and
path-vector routing.  All of them — including Disco and NDDisco, which live
in :mod:`repro.core` — implement the :class:`RoutingScheme` interface defined
in :mod:`repro.protocols.base`, so the static simulator, the metrics, and the
experiment harness treat every protocol uniformly.
"""

from repro.protocols.base import RouteResult, RoutingScheme
from repro.protocols.shortest_path import ShortestPathRouting
from repro.protocols.pathvector import PathVectorRouting
from repro.protocols.s4 import S4Routing
from repro.protocols.vrr import VirtualRingRouting
from repro.protocols.registry import available_schemes, build_scheme

__all__ = [
    "PathVectorRouting",
    "RouteResult",
    "RoutingScheme",
    "S4Routing",
    "ShortestPathRouting",
    "VirtualRingRouting",
    "available_schemes",
    "build_scheme",
]
