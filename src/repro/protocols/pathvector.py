"""Path-vector routing: the protocol NDDisco's route learning is built from.

In the converged state, path vector is shortest-path routing: every node
holds one route per destination and packets follow shortest paths.  What
distinguishes it is the *control plane* -- each node remembers the full set
of route advertisements received from each neighbor, Θ(δ·n) state for a node
of degree δ, and convergence costs many messages (the quantity Fig. 8
measures; see :mod:`repro.sim.agents.pathvector_agent` for the dynamic
model).  NDDisco runs exactly this protocol but accepts a route only if its
destination is a landmark or among the Θ(√(n log n)) closest nodes currently
advertised (§4.2 "Learning paths to landmarks and vicinities").
"""

from __future__ import annotations

from repro.graphs.topology import Topology
from repro.protocols.shortest_path import ShortestPathRouting

__all__ = ["PathVectorRouting"]


class PathVectorRouting(ShortestPathRouting):
    """Converged path-vector routing.

    Data-plane state and routes match :class:`ShortestPathRouting`; the
    control-plane accounting (full per-neighbor advertisement sets) is
    exposed via :meth:`control_state_entries`, and the convergence messaging
    is simulated by the discrete-event simulator.
    """

    name = "Path-Vector"

    def __init__(
        self, topology: Topology, *, seed: int = 0, forgetful: bool = False
    ) -> None:
        super().__init__(topology, seed=seed)
        self._forgetful = forgetful

    @property
    def forgetful(self) -> bool:
        """True if Forgetful Routing [24] is enabled (drop unused advertisements)."""
        return self._forgetful

    def control_state_entries(self, node: int) -> int:
        """Control-plane entries: per-neighbor advertisement sets.

        With forgetful routing the node keeps only the best route per
        destination, so control state collapses to the data-plane size.
        """
        self._check_endpoints(node, node)
        destinations = self._topology.num_nodes - 1
        if self._forgetful:
            return destinations
        return destinations * max(1, self._topology.degree(node))
