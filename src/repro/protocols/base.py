"""The common routing-scheme interface.

Every protocol in this reproduction -- Disco, NDDisco, S4, VRR, path vector,
shortest-path -- is modelled in its *converged* state: the object is built
from a topology (plus a seed for any randomized choices) and then answers the
three questions the evaluation asks:

1. how much data-plane state does node ``v`` hold (entries and bytes)?
2. what route does the *first packet* of a flow from ``s`` to ``t`` take?
3. what route do *later packets* take?

The answers feed the state, stretch, and congestion metrics.  Control-plane
messaging is evaluated separately in the discrete-event simulator
(:mod:`repro.sim`), because it is a dynamic quantity that a converged-state
model cannot capture.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Sequence

from repro.graphs.topology import Topology

__all__ = ["RouteResult", "RoutingScheme"]


@dataclass(frozen=True)
class RouteResult:
    """The outcome of routing one packet.

    Attributes
    ----------
    path:
        The sequence of nodes traversed, starting at the source and ending at
        the destination.  A failed delivery yields an empty tuple.
    mechanism:
        A short label describing which protocol case produced the route
        (e.g. ``"vicinity"``, ``"landmark-relay"``, ``"greedy"``); used by the
        reports to break results down by case.
    delivered:
        True if the packet reached the destination.
    """

    path: tuple[int, ...]
    mechanism: str
    delivered: bool = True

    @property
    def hop_count(self) -> int:
        """Number of edges traversed (0 for an empty or single-node path)."""
        return max(len(self.path) - 1, 0)

    def length(self, topology: Topology) -> float:
        """Total weighted length of the path on ``topology``."""
        total = 0.0
        for u, v in zip(self.path, self.path[1:]):
            total += topology.edge_weight(u, v)
        return total


class RoutingScheme(abc.ABC):
    """Abstract converged-state model of a routing protocol.

    Subclasses perform all precomputation in ``__init__`` (from a
    :class:`~repro.graphs.Topology` and a seed) and then answer state and
    routing queries.  All query methods must be deterministic.
    """

    #: Human-readable protocol name used in reports (subclasses override).
    name: str = "abstract"

    def __init__(self, topology: Topology) -> None:
        if topology.num_nodes == 0:
            raise ValueError("cannot build a routing scheme on an empty topology")
        if not topology.is_connected():
            raise ValueError(
                "routing schemes require a connected topology; "
                "use Topology.largest_component_subgraph() first"
            )
        self._topology = topology

    @property
    def topology(self) -> Topology:
        """The topology this scheme was built on."""
        return self._topology

    # -- state accounting --------------------------------------------------

    @abc.abstractmethod
    def state_entries(self, node: int) -> int:
        """Number of data-plane routing-table entries held by ``node``.

        This counts "everything necessary to forward a packet after the
        protocol has converged" (§5.2): forwarding entries, name-resolution
        entries, label mappings, and address mappings, as applicable.
        """

    def state_bytes(self, node: int, *, name_bytes: int = 4) -> float:
        """Data-plane state at ``node`` in bytes, with ``name_bytes``-sized names.

        The default implementation charges one name per entry; protocols with
        richer entries (addresses with explicit routes) override this.
        """
        return float(self.state_entries(node)) * name_bytes

    def state_entry_counts(self) -> list[int]:
        """Convenience: ``state_entries`` for every node, indexed by node id."""
        return [self.state_entries(node) for node in self._topology.nodes()]

    # -- routing -----------------------------------------------------------

    @abc.abstractmethod
    def first_packet_route(self, source: int, target: int) -> RouteResult:
        """Route the first packet of a flow from ``source`` to ``target``."""

    @abc.abstractmethod
    def later_packet_route(self, source: int, target: int) -> RouteResult:
        """Route packets after the first (post-handshake) for the flow."""

    # -- shared helpers ----------------------------------------------------

    def _check_endpoints(self, source: int, target: int) -> None:
        n = self._topology.num_nodes
        if not 0 <= source < n:
            raise ValueError(f"source {source} out of range (n={n})")
        if not 0 <= target < n:
            raise ValueError(f"target {target} out of range (n={n})")

    @staticmethod
    def _validate_path(path: Sequence[int], source: int, target: int) -> None:
        if not path or path[0] != source or path[-1] != target:
            raise AssertionError(
                f"internal error: produced invalid path {path} for "
                f"{source}->{target}"
            )

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(topology={self._topology.name!r}, "
            f"n={self._topology.num_nodes})"
        )
