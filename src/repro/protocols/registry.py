"""Protocol registry: build any evaluated scheme by name.

The experiment harness and the examples refer to protocols by the names the
paper uses ("Disco", "ND-Disco", "S4", "VRR", "Path-Vector",
"Shortest-Path"); this registry maps those names to constructors so that a
figure's protocol list is just a list of strings.
"""

from __future__ import annotations

from typing import Callable

from repro.graphs.topology import Topology
from repro.protocols.base import RoutingScheme
from repro.protocols.pathvector import PathVectorRouting
from repro.protocols.s4 import S4Routing
from repro.protocols.shortest_path import ShortestPathRouting
from repro.protocols.vrr import VirtualRingRouting

__all__ = ["available_schemes", "build_scheme"]


def _build_disco(topology: Topology, seed: int, **kwargs) -> RoutingScheme:
    from repro.core.disco import DiscoRouting

    return DiscoRouting(topology, seed=seed, **kwargs)


def _build_nddisco(topology: Topology, seed: int, **kwargs) -> RoutingScheme:
    from repro.core.nddisco import NDDiscoRouting

    return NDDiscoRouting(topology, seed=seed, **kwargs)


_BUILDERS: dict[str, Callable[..., RoutingScheme]] = {
    "disco": _build_disco,
    "nd-disco": _build_nddisco,
    "nddisco": _build_nddisco,
    "s4": lambda topology, seed, **kwargs: S4Routing(topology, seed=seed, **kwargs),
    "vrr": lambda topology, seed, **kwargs: VirtualRingRouting(
        topology, seed=seed, **kwargs
    ),
    "path-vector": lambda topology, seed, **kwargs: PathVectorRouting(
        topology, seed=seed, **kwargs
    ),
    "shortest-path": lambda topology, seed, **kwargs: ShortestPathRouting(
        topology, seed=seed, **kwargs
    ),
}


def available_schemes() -> list[str]:
    """Return the canonical protocol names accepted by :func:`build_scheme`."""
    return ["disco", "nd-disco", "s4", "vrr", "path-vector", "shortest-path"]


def build_scheme(
    name: str, topology: Topology, *, seed: int = 0, **kwargs
) -> RoutingScheme:
    """Build the named protocol on ``topology``.

    Parameters
    ----------
    name:
        Case-insensitive protocol name; see :func:`available_schemes`.
    topology, seed:
        Passed to the protocol's constructor.
    kwargs:
        Protocol-specific options (e.g. ``shortcut_mode`` for Disco/NDDisco,
        ``vset_size`` for VRR).

    Raises
    ------
    KeyError
        If the name is unknown.
    """
    key = name.strip().lower()
    if key not in _BUILDERS:
        raise KeyError(
            f"unknown routing scheme {name!r}; available: {available_schemes()}"
        )
    return _BUILDERS[key](topology, seed, **kwargs)
