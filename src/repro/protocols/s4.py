"""S4: small state and small stretch routing (Mao et al., NSDI 2007).

S4 adapts the stretch-3 compact-routing scheme of Thorup and Zwick to a
distributed setting, but -- as the paper demonstrates in §5 -- its use of
uniform-random landmarks together with Thorup-Zwick *clusters* breaks the
per-node state bound: "some nodes can be close to many nodes in the network,
exploding their cluster size" (§4.2 "Comparison with S4"), up to Θ̃(n) entries
on the footnote-6 tree topology and tens of thousands of entries on the
router-level Internet map (Fig. 2 / Fig. 7).

Model
-----
* Landmarks: the same uniform-random selection as NDDisco (probability
  sqrt(log n / n)); every node knows shortest paths to all landmarks.
* Cluster of v: ``C(v) = {w : d(v, w) < d(w, ℓw)}`` -- all nodes w strictly
  closer to v than to their own closest landmark.  v stores a shortest-path
  route to every cluster member.
* Label (address) of t: ``(ℓt, port at ℓt toward t)`` -- fixed size; no
  explicit source route is needed because every node on ℓt's shortest path
  to t (other than ℓt itself) has t in its cluster.
* Routing s→t: if t is a landmark or ``t ∈ C(s)``, use the direct shortest
  path; otherwise forward toward ℓt, and the moment the packet passes a node
  u with ``t ∈ C(u)`` it follows u's direct path (To-Destination
  shortcutting, which is intrinsic to S4).  Worst-case stretch 3.
* First packets: like the paper's evaluation, S4 is "coupled with" a
  consistent-hashing location service on the landmarks, so the first packet
  of a flow detours through the landmark that owns h(t) before being routed
  on; this is what makes S4's first-packet stretch large in Figs. 3-5.
"""

from __future__ import annotations

from array import array
from typing import Sequence

from repro.core.landmarks import closest_landmarks, landmark_spts, select_landmarks
from repro.core.resolution import LandmarkResolutionDatabase
from repro.core.substrate_build import (
    build_ball_tables,
    build_substrate_tables,
    cluster_sizes_from_members,
)
from repro.core.tables import NodeSearchTables, SubstrateTables, get_backend
from repro.addressing.address import Address, NAME_BYTES_IPV4, NAME_BYTES_IPV6
from repro.addressing.explicit_route import ExplicitRoute
from repro.addressing.labels import LabelCodec
from repro.graphs.csr import parallel_radius
from repro.graphs.engine import get_engine
from repro.graphs.shortest_paths import dijkstra_radius, extract_path
from repro.graphs.topology import Topology
from repro.naming.names import FlatName, name_for_node
from repro.protocols.base import RouteResult, RoutingScheme

__all__ = ["S4Routing"]


class S4Routing(RoutingScheme):
    """Converged-state model of S4.

    Parameters
    ----------
    topology:
        The (connected) network.
    seed:
        Seed for landmark selection (passing the same seed as an
        :class:`~repro.core.nddisco.NDDiscoRouting` instance gives both
        protocols identical landmark sets, as in the paper's comparisons).
    landmarks:
        Optional externally supplied landmark set.
    names:
        Flat names per node (used by the landmark location service).
    resolve_first_packet:
        If True (default), first packets detour through the location
        service's home landmark for the destination.
    substrate:
        Optional :class:`~repro.core.nddisco.NDDiscoRouting` built on the
        same topology and landmark set.  The converged landmark substrate --
        SPT rows, closest-landmark rows, addresses, and (unless ``names``
        overrides them) names -- is deterministic given topology and
        landmarks, so it is reused instead of recomputed, exactly as one
        deployment running both schemes would share it.  Treated as
        read-only.  :class:`~repro.staticsim.simulation.StaticSimulation`
        passes NDDisco here when the schemes share a landmark set.
    workers:
        Opt-in multiprocessing fan-out for the landmark SPTs (own-substrate
        builds) and the per-node cluster ("ball") searches; ``None`` or
        ``1`` runs the serial batched drivers.
    threads:
        In-kernel thread fan-out for the same phases when no worker pool
        is requested (``0`` pins the serial per-source loop); results are
        byte-identical for every width.
    storage:
        Slab placement for an own-substrate build (``None``, ``"mmap"``,
        or a directory path -- see
        :func:`~repro.core.substrate_build.build_substrate_tables`).
        Ignored when a shared ``substrate`` supplies the slabs.
    """

    name = "S4"

    def __init__(
        self,
        topology: Topology,
        *,
        seed: int = 0,
        landmarks: set[int] | None = None,
        names: Sequence[FlatName] | None = None,
        resolve_first_packet: bool = True,
        substrate: "object | None" = None,
        workers: int | None = None,
        threads: int | None = None,
        storage: "str | None" = None,
    ) -> None:
        super().__init__(topology)
        n = topology.num_nodes
        self._resolve_first_packet = resolve_first_packet
        if names is not None:
            self._names = list(names)
        elif substrate is not None:
            self._names = list(substrate.names)
        else:
            self._names = [name_for_node(v) for v in range(n)]
        if len(self._names) != n:
            raise ValueError(f"names must have exactly {n} entries")

        self._landmarks: set[int] = (
            set(landmarks) if landmarks is not None else select_landmarks(n, seed=seed)
        )
        if not self._landmarks:
            raise ValueError("landmark set must be non-empty")

        # Landmark shortest-path trees (distances and parents, dense rows),
        # either shared from the sibling scheme or built by the batched
        # driver.  A scheme that builds its own landmark state re-packs it
        # into flat :class:`SubstrateTables` slabs on the "array" backend
        # (a shared substrate's slabs are reused as-is).
        self._tables: SubstrateTables | None = None
        if substrate is not None:
            # Identity is the common case; equality (same nodes and weighted
            # edges) admits substrates round-tripped through the scenario
            # engine's disk cache, which are content-equal distinct objects.
            if substrate.topology is not topology and substrate.topology != topology:
                raise ValueError("substrate must be built on the same topology")
            if substrate.landmarks != self._landmarks:
                raise ValueError("substrate must share this scheme's landmark set")
            spts = substrate.landmark_spts
            self._closest_landmark, self._landmark_distance_of = (
                substrate.closest_landmark_rows
            )
            self._tables = getattr(substrate, "tables", None)
        elif get_backend() == "array":
            self._codec = LabelCodec(topology)
            if get_engine() == "csr":
                # Slab-direct build (landmark slabs only, no vicinity):
                # SPT rows land straight in the slabs, optionally fanned
                # over workers / packed into mmap-backed storage.
                self._tables = build_substrate_tables(
                    topology,
                    self._landmarks,
                    codec=self._codec,
                    include_vicinity=False,
                    workers=workers,
                    threads=threads,
                    storage=storage,
                )
            else:
                built = landmark_spts(topology, self._landmarks)
                closest_rows = closest_landmarks(built, n)
                self._tables = SubstrateTables.from_components(
                    n, built, closest_rows, None, self._codec
                )
            spts = self._tables.spt_rows()
            self._closest_landmark, self._landmark_distance_of = (
                self._tables.closest_rows()
            )
        else:
            spts = landmark_spts(topology, self._landmarks)
            self._closest_landmark, self._landmark_distance_of = (
                closest_landmarks(spts, n)
            )
        self._landmark_distances = {
            landmark: rows[0] for landmark, rows in spts.items()
        }
        self._landmark_parents = {
            landmark: rows[1] for landmark, rows in spts.items()
        }

        # Reverse-cluster ("ball") searches: for each node w, find every node
        # v with d(w, v) < d(w, ℓw); those v have w in their cluster.  The
        # search tree also provides the shortest path from w back to v, which
        # is the (reversed) route v uses to reach w.  On the "array" backend
        # the per-node dict pairs collapse into one CSR-slab table.
        radii = self._landmark_distance_of
        self._balls: NodeSearchTables | None = None
        if get_backend() == "array" and get_engine() == "csr":
            # Flat transport: rows are gathered straight into the CSR
            # slabs (workers ship typed arrays, not per-node dicts) and
            # cluster sizes come from one C-speed bincount over the
            # members slab -- every row starts with its owner, so the
            # historical "member != node" exclusion is the minus-one in
            # cluster_sizes_from_members.
            self._balls = build_ball_tables(
                topology, radii, workers=workers, threads=threads
            )
            self._ball_distances = [
                self._balls.distance_map(node) for node in range(n)
            ]
            self._ball_parents = [
                self._balls.predecessor_map(node) for node in range(n)
            ]
            self._cluster_sizes = cluster_sizes_from_members(
                self._balls.members, n
            )
        else:
            if get_engine() == "csr":
                balls = parallel_radius(topology, radii, workers=workers or 1)
            else:
                balls = [
                    dijkstra_radius(topology, node, radii[node])
                    for node in range(n)
                ]
            cluster_sizes = [0] * n
            for node, (distances, _parents) in enumerate(balls):
                for member in distances:
                    if member != node:
                        cluster_sizes[member] += 1
            if get_backend() == "array":
                self._balls = NodeSearchTables.from_searches(balls)
                self._ball_distances = [
                    self._balls.distance_map(node) for node in range(n)
                ]
                self._ball_parents = [
                    self._balls.predecessor_map(node) for node in range(n)
                ]
                self._cluster_sizes = array("q", cluster_sizes)
            else:
                self._ball_distances = [distances for distances, _ in balls]
                self._ball_parents = [parents for _, parents in balls]
                self._cluster_sizes = cluster_sizes

        # Location service over the landmarks (consistent hashing of names).
        # Addresses are a pure function of topology and landmark set, so a
        # shared substrate supplies them (and its codec) ready-made.
        if substrate is not None:
            self._codec = substrate.codec
            self._addresses = list(substrate.addresses)
        elif self._tables is not None:
            self._addresses = self._tables.addresses()
        else:
            self._codec = LabelCodec(topology)
            self._addresses = []
            for node in range(n):
                landmark = self._closest_landmark[node]
                tree_path = _extract_path_dense(
                    self._landmark_parents[landmark], landmark, node
                )
                route = ExplicitRoute.from_path(self._codec, tree_path)
                self._addresses.append(
                    Address(node=node, landmark=landmark, route=route)
                )
        self._resolution = LandmarkResolutionDatabase(self._landmarks)
        self._resolution.populate(self._names, self._addresses)

    # -- accessors -----------------------------------------------------------

    @property
    def tables(self) -> SubstrateTables | None:
        """The flat landmark-substrate slabs this scheme routes over.

        Shared with the sibling ND-Disco instance when a ``substrate`` was
        supplied; ``None`` on the "dict" backend.  Read-only.
        """
        return self._tables

    @property
    def balls(self) -> NodeSearchTables | None:
        """The reverse-cluster CSR slabs (``None`` on the "dict" backend)."""
        return self._balls

    @property
    def landmarks(self) -> set[int]:
        """The landmark set (a copy)."""
        return set(self._landmarks)

    @property
    def resolution_database(self) -> LandmarkResolutionDatabase:
        """The landmark-hosted location service."""
        return self._resolution

    def closest_landmark(self, node: int) -> int:
        """Return ℓv for ``node``."""
        return self._closest_landmark[node]

    def cluster_size(self, node: int) -> int:
        """Return |C(node)|: how many nodes ``node`` stores direct routes for."""
        return self._cluster_sizes[node]

    def in_cluster(self, holder: int, member: int) -> bool:
        """Return True if ``member`` belongs to ``holder``'s cluster."""
        if holder == member:
            return False
        return holder in self._ball_distances[member]

    def cluster_path(self, holder: int, member: int) -> list[int]:
        """Shortest path from ``holder`` to a cluster member."""
        if not self.in_cluster(holder, member):
            raise ValueError(f"{member} is not in the cluster of {holder}")
        reverse = extract_path(self._ball_parents[member], member, holder)
        return list(reversed(reverse))

    def landmark_path(self, landmark: int, node: int) -> list[int]:
        """Return the SPT path from ``landmark`` to ``node``."""
        if landmark not in self._landmark_parents:
            raise KeyError(f"{landmark} is not a landmark")
        return _extract_path_dense(self._landmark_parents[landmark], landmark, node)

    # -- state accounting ------------------------------------------------------

    def state_entries(self, node: int) -> int:
        """Cluster routes + landmark routes + location-service records."""
        self._check_endpoints(node, node)
        landmark_entries = len(self._landmarks) - (1 if node in self._landmarks else 0)
        return (
            self._cluster_sizes[node]
            + landmark_entries
            + self._resolution.entries_at(node)
        )

    def state_bytes(self, node: int, *, name_bytes: int = NAME_BYTES_IPV4) -> float:
        """Bytes of state: forwarding entries plus location records (Fig. 7)."""
        landmark_entries = len(self._landmarks) - (1 if node in self._landmarks else 0)
        forwarding_entries = self._cluster_sizes[node] + landmark_entries
        forwarding_bytes = forwarding_entries * (name_bytes + 1.0)
        resolution_bytes = self._resolution.entry_bytes_at(node, name_bytes=name_bytes)
        return forwarding_bytes + resolution_bytes

    def state_profile(
        self, nodes: Sequence[int]
    ) -> tuple[list[int], list[float], list[float]]:
        """Batched state accounting: ``(entries, IPv4 bytes, IPv6 bytes)``.

        Mirrors :meth:`state_entries` / :meth:`state_bytes` value for
        value; used by :func:`repro.metrics.state.measure_state`.
        """
        num_landmarks = len(self._landmarks)
        entries_out: list[int] = []
        bytes_v4: list[float] = []
        bytes_v6: list[float] = []
        for node in nodes:
            self._check_endpoints(node, node)
            landmark_entries = num_landmarks - (
                1 if node in self._landmarks else 0
            )
            cluster = self._cluster_sizes[node]
            entries_out.append(
                cluster + landmark_entries + self._resolution.entries_at(node)
            )
            for name_bytes, out in (
                (NAME_BYTES_IPV4, bytes_v4),
                (NAME_BYTES_IPV6, bytes_v6),
            ):
                forwarding_bytes = (cluster + landmark_entries) * (
                    name_bytes + 1.0
                )
                resolution_bytes = self._resolution.entry_bytes_at(
                    node, name_bytes=name_bytes
                )
                out.append(forwarding_bytes + resolution_bytes)
        return entries_out, bytes_v4, bytes_v6

    # -- routing ----------------------------------------------------------------

    def knows_direct_route(self, source: int, target: int) -> bool:
        """True if ``source`` can reach ``target`` from its own tables."""
        return target in self._landmarks or self.in_cluster(source, target)

    def direct_route(self, source: int, target: int) -> list[int]:
        """Shortest path ``source`` holds toward ``target`` (landmark or cluster)."""
        if self.in_cluster(source, target):
            return self.cluster_path(source, target)
        if target in self._landmarks:
            return list(reversed(self.landmark_path(target, source)))
        raise ValueError(f"{source} holds no direct route to {target}")

    def compact_route(self, source: int, target: int) -> tuple[list[int], str]:
        """Route assuming ``source`` knows ``target``'s label (ℓt, port)."""
        self._check_endpoints(source, target)
        if source == target:
            return [source], "self"
        if self.knows_direct_route(source, target):
            return self.direct_route(source, target), "direct"
        landmark = self._closest_landmark[target]
        toward_landmark = list(reversed(self.landmark_path(landmark, source)))
        from_landmark = self.landmark_path(landmark, target)
        base = toward_landmark + from_landmark[1:]
        # Intrinsic To-Destination shortcutting on cluster knowledge.
        route = self._cluster_shortcut(base, target)
        return route, "landmark-relay"

    def _cluster_shortcut(self, route: list[int], target: int) -> list[int]:
        """Splice in a direct cluster path from the first node that has one."""
        if target in route[:-1]:
            return route[: route.index(target) + 1]
        for index, node in enumerate(route[:-1]):
            if self.in_cluster(node, target):
                return route[:index] + self.cluster_path(node, target)
        return route

    def first_packet_route(self, source: int, target: int) -> RouteResult:
        """First packet: resolve the label at the location service, then route."""
        self._check_endpoints(source, target)
        if source == target:
            return RouteResult(path=(source,), mechanism="self")
        if self.knows_direct_route(source, target):
            return RouteResult(
                path=tuple(self.direct_route(source, target)), mechanism="direct"
            )
        if not self._resolve_first_packet:
            path, mechanism = self.compact_route(source, target)
            return RouteResult(path=tuple(path), mechanism=mechanism)
        resolver = self._resolution.home_landmark(self._names[target])
        to_resolver = list(reversed(self.landmark_path(resolver, source)))
        if resolver == target:
            return RouteResult(path=tuple(to_resolver), mechanism="resolver-is-target")
        onward, _ = self.compact_route(resolver, target)
        full = to_resolver + onward[1:]
        if target in full[:-1]:
            full = full[: full.index(target) + 1]
        return RouteResult(path=tuple(full), mechanism="resolve-then-route")

    def later_packet_route(self, source: int, target: int) -> RouteResult:
        """Later packets: the sender caches the label and compact-routes."""
        self._check_endpoints(source, target)
        if source == target:
            return RouteResult(path=(source,), mechanism="self")
        path, mechanism = self.compact_route(source, target)
        return RouteResult(path=tuple(path), mechanism=mechanism)


def _extract_path_dense(parents: list[int], root: int, node: int) -> list[int]:
    """Reconstruct the root ; node path from a dense parent list (-1 = none)."""
    if node == root:
        return [root]
    path = [node]
    current = node
    steps = 0
    limit = len(parents)
    while current != root:
        parent = parents[current]
        if parent < 0 or steps > limit:
            raise ValueError(f"node {node} not reachable from root {root}")
        path.append(parent)
        current = parent
        steps += 1
    path.reverse()
    return path
