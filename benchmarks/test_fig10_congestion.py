"""Benchmark: regenerate Fig. 10 (congestion tail on the AS-level topology).

Paper shape: only a very small fraction of edges (0.05% in the paper) see
significantly more load under Disco than under shortest-path routing; the
bulk of the distribution matches shortest paths closely.
"""

from __future__ import annotations

from repro.experiments import fig10_congestion_as


def test_fig10_congestion_as(benchmark, scale, run_once):
    result = run_once(fig10_congestion_as.run, scale)
    report = fig10_congestion_as.format_report(result)
    assert report

    disco = result.reports["Disco"]
    s4 = result.reports["S4"]
    shortest = result.reports["Path-Vector"]

    # Median / p90 congestion of the compact schemes matches shortest paths.
    assert disco.summary.median <= shortest.summary.median + 2
    # Only a tiny fraction of edges exceed the shortest-path maximum load.
    disco_tail = result.tail_excess_fraction("Disco")
    s4_tail = result.tail_excess_fraction("S4")
    assert disco_tail <= 0.02
    assert s4_tail <= 0.02

    benchmark.extra_info["disco_tail_excess_pct"] = round(disco_tail * 100, 3)
    benchmark.extra_info["s4_tail_excess_pct"] = round(s4_tail * 100, 3)
    benchmark.extra_info["disco_max_edge_load"] = disco.max_usage()
    benchmark.extra_info["shortest_path_max_edge_load"] = shortest.max_usage()
