"""Benchmark: regenerate Fig. 8 (control messaging until convergence vs n).

Paper shape: path vector's per-node messaging grows linearly in n and
dominates every compact protocol; S4 sits slightly below ND-Disco (smaller
clusters than vicinities on random graphs); Disco adds only a modest overhead
on top of ND-Disco, and 3 fingers cost slightly more than 1.
"""

from __future__ import annotations

from repro.experiments import fig08_messaging


def test_fig08_messaging(benchmark, scale, run_once):
    result = run_once(fig08_messaging.run, scale)
    report = fig08_messaging.format_report(result)
    assert report

    largest = max(result.sweep)
    smallest = min(result.sweep)
    path_vector = result.entries_per_node("Path-Vector")
    nddisco = result.entries_per_node("ND-Disco")
    s4 = result.entries_per_node("S4")
    disco_one = result.entries_per_node("Disco-1-Finger")
    disco_three = result.entries_per_node("Disco-3-Finger")

    # Path vector dominates at the largest size, and its growth from the
    # smallest to the largest size outpaces the compact protocols'.
    assert path_vector[largest] > nddisco[largest]
    assert path_vector[largest] > disco_three[largest]
    pv_growth = path_vector[largest] / path_vector[smallest]
    nd_growth = nddisco[largest] / nddisco[smallest]
    assert pv_growth > nd_growth

    # Disco adds overhead on top of ND-Disco; more fingers cost more.
    assert disco_one[largest] > nddisco[largest]
    assert disco_three[largest] >= disco_one[largest]

    benchmark.extra_info["pv_entries_per_node"] = round(path_vector[largest], 1)
    benchmark.extra_info["nddisco_entries_per_node"] = round(nddisco[largest], 1)
    benchmark.extra_info["s4_entries_per_node"] = round(s4[largest], 1)
    benchmark.extra_info["disco1_entries_per_node"] = round(disco_one[largest], 1)
    benchmark.extra_info["disco3_entries_per_node"] = round(disco_three[largest], 1)
