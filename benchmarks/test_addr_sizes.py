"""Benchmark: regenerate the §4.2 explicit-route (address) size measurement.

Paper numbers on the CAIDA router-level map: mean 2.93 bytes (< IPv4), 95th
percentile 5 bytes, max 10.625 bytes (< IPv6).  On the synthetic router-like
topology the absolute values differ but the same ordering must hold: mean of
a few bytes, everything comfortably below an IPv6 address.
"""

from __future__ import annotations

from repro.experiments import addr_sizes


def test_addr_sizes(benchmark, scale, run_once):
    result = run_once(addr_sizes.run, scale)
    report = addr_sizes.format_report(result)
    assert report

    router = result.router_level
    # Mean address route of a few bytes, below an IPv4 address's 4 bytes is
    # not guaranteed on the synthetic graph, but it must be well below IPv6.
    assert router.mean < 8.0
    assert result.router_level_p95 < 16.0
    assert router.maximum < 16.0
    # The ring worst case is no better than the Internet-like mean.
    assert result.ring.maximum >= router.mean

    benchmark.extra_info["router_mean_bytes"] = round(router.mean, 2)
    benchmark.extra_info["router_p95_bytes"] = round(result.router_level_p95, 2)
    benchmark.extra_info["router_max_bytes"] = round(router.maximum, 2)
    benchmark.extra_info["ring_max_bytes"] = round(result.ring.maximum, 2)
