"""Benchmark: the CSR kernel perf-regression harness (``repro bench``).

Runs the quick variant of the before/after suite -- the dict-based reference
engine against the flat-array CSR kernels -- and records every speedup in
``benchmark.extra_info`` so the pytest-benchmark report tracks the perf
trajectory alongside the figure benchmarks.  The assertions are canaries:
they fail loudly if the CSR engine ever regresses to (or below) the
reference engine on the workloads the protocols are built from, while
leaving headroom for machine noise.  The headline numbers live in
``BENCH_kernels.json``, produced by ``repro bench`` at full scale.
"""

from __future__ import annotations

from repro.perf.kernel_bench import BENCH_SCHEMA, bench_kernels


def test_perf_kernels_quick(benchmark, run_once):
    report = run_once(bench_kernels, quick=True)
    assert report["schema"] == BENCH_SCHEMA
    assert report["quick"] is True
    assert "c_kernels" in report

    entries = report["benchmarks"]
    expected = {
        "dijkstra_full/gnm-512",
        "dijkstra_full/geometric-512",
        "dijkstra_full/geometric-q-512",
        "k_nearest/gnm-512",
        "radius/gnm-512",
        "batched_targets/gnm-512",
        "staticsim/gnm-256",
        "staticsim/geometric-256",
        "measurement_batch/gnm-256",
        "measurement_scaling/gnm-1024",
        "measurement_scaling/gnm-4096",
        "resolution_scaling/gnm-1024",
        "resolution_scaling/gnm-4096",
        "substrate_build_threads/gnm-1024-threads-1",
        "substrate_build_threads/gnm-1024-threads-2",
        "churn_scaling/gnm-1024-events-4",
    }
    assert expected <= set(entries)

    for name, entry in entries.items():
        assert entry["before_s"] > 0 and entry["after_s"] > 0
        benchmark.extra_info[name] = entry["speedup"]

    # Canary floors, far below the committed full-scale numbers (4.7-12x
    # locally with the C tier; see BENCH_kernels.json) so noisy shared CI
    # runners and compiler-less environments cannot trip them: the
    # unit-weight workloads must stay clearly ahead of the reference
    # engine, and the weighted kernels must not collapse behind it.
    assert entries["dijkstra_full/gnm-512"]["speedup"] > 1.2
    assert entries["k_nearest/gnm-512"]["speedup"] > 1.2
    assert entries["staticsim/gnm-256"]["speedup"] > 1.2
    assert entries["dijkstra_full/geometric-512"]["speedup"] > 0.5
    assert entries["dijkstra_full/geometric-q-512"]["speedup"] > 0.5
    # The batched measurement engine must stay clearly ahead of the
    # per-pair loop even at the shrunken quick scale (the committed
    # full-scale entry runs >= 2x; see BENCH_kernels.json).
    assert entries["measurement_batch/gnm-256"]["speedup"] > 1.2
    # Scaling families: the batched engine and the bisect ring must stay
    # ahead of their brute-force oracles at every curve point.  The ring
    # runs ~2 orders of magnitude ahead of the full-scan oracle at full
    # scale, so 1.2 is a generous floor.
    assert entries["measurement_scaling/gnm-1024"]["speedup"] > 1.2
    assert entries["measurement_scaling/gnm-4096"]["speedup"] > 1.2
    assert entries["resolution_scaling/gnm-1024"]["speedup"] > 1.2
    assert entries["resolution_scaling/gnm-4096"]["speedup"] > 1.2
    # The churn engine must stay clearly ahead of the per-event replay
    # oracle on the scaling curve (the committed full-scale entries run
    # ~8-14x; see BENCH_kernels.json), and every in-kernel thread fan-out
    # must reproduce the serial slabs byte for byte -- a determinism
    # failure here means the batch layer's chunking drifted, which the
    # differential tests would also catch but less cheaply.
    assert entries["churn_scaling/gnm-1024-events-4"]["speedup"] > 1.2
    for name, entry in entries.items():
        if name.startswith("substrate_build_threads/"):
            assert entry["params"]["byte_identical_to_serial"] is True

    # The run's host block records the thread fan-out the batched entry
    # points resolved to, so recorded numbers stay interpretable.
    assert report["host"]["kernel_threads"] >= 1
