"""Benchmark: regenerate Fig. 1 (protocol-property taxonomy)."""

from __future__ import annotations

from repro.experiments import fig01_taxonomy


def test_fig01_taxonomy(benchmark, scale, run_once):
    result = run_once(fig01_taxonomy.run, scale)
    report = fig01_taxonomy.format_report(result)
    assert report

    rows = {row.protocol: row for row in result.rows}
    # The scalable protocols grow their state much more slowly than the
    # Ω(n)-state baselines when n doubles.
    assert rows["Disco"].state_growth_ratio < rows["Shortest-Path"].state_growth_ratio
    assert rows["ND-Disco"].state_growth_ratio < rows["Path-Vector"].state_growth_ratio
    # Stretch-bounded protocols stay within 3 on later packets.
    for protocol in ("Disco", "ND-Disco", "S4", "Shortest-Path", "Path-Vector"):
        assert rows[protocol].observed_max_later_stretch <= 3.0 + 1e-9

    benchmark.extra_info["disco_state_growth"] = round(
        rows["Disco"].state_growth_ratio, 3
    )
    benchmark.extra_info["vrr_max_later_stretch"] = round(
        rows["VRR"].observed_max_later_stretch, 3
    )
