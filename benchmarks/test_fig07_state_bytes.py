"""Benchmark: regenerate Fig. 7 (state in entries and kilobytes).

Paper shape (router-level topology): S4 has the lowest mean but a max that
breaks the worst-case bound by an order of magnitude; ND-Disco and Disco keep
max ≈ mean; Disco pays a constant-factor premium over ND-Disco for
name-independence; IPv6-sized names roughly triple the byte counts.
"""

from __future__ import annotations

from repro.experiments import fig07_state_bytes


def test_fig07_state_bytes(benchmark, scale, run_once):
    result = run_once(fig07_state_bytes.run, scale)
    report = fig07_state_bytes.format_report(result)
    assert report

    reports = result.reports
    s4 = reports["S4"].entry_summary
    nddisco = reports["ND-Disco"].entry_summary
    disco = reports["Disco"].entry_summary

    # S4: best mean, but by far the most unbalanced distribution (at the
    # paper's 192k-node scale this is what "severely breaks worst-case
    # bounds" -- max an order of magnitude above the mean).
    assert s4.mean < nddisco.mean
    assert s4.maximum / s4.mean > nddisco.maximum / nddisco.mean
    # ND-Disco / Disco stay balanced; Disco costs more than ND-Disco.
    assert nddisco.maximum <= 2.5 * nddisco.mean
    assert disco.maximum <= 2.5 * disco.mean
    assert disco.mean > nddisco.mean

    # Bytes: IPv6-sized names cost more than IPv4-sized names for everyone.
    for name in ("S4", "ND-Disco", "Disco"):
        row = reports[name].kilobytes_row()
        assert row["kb_ipv6_mean"] > row["kb_ipv4_mean"]

    benchmark.extra_info["s4_entries_mean"] = round(s4.mean, 1)
    benchmark.extra_info["s4_entries_max"] = round(s4.maximum, 1)
    benchmark.extra_info["nddisco_entries_mean"] = round(nddisco.mean, 1)
    benchmark.extra_info["nddisco_entries_max"] = round(nddisco.maximum, 1)
    benchmark.extra_info["disco_entries_mean"] = round(disco.mean, 1)
    benchmark.extra_info["disco_kb_ipv4_mean"] = round(
        reports["Disco"].kilobytes_row()["kb_ipv4_mean"], 2
    )
