"""Benchmark: regenerate the §5.2 n-estimate error-injection experiment.

Paper numbers on the 1,024-node random graph: with 40% random error every
node reaches every destination and mean stretch rises only 0.6% (1.253 ->
1.261); with 60% error a single node missed a single group in one of five
runs.  The shape to check: reachability stays essentially perfect and the
stretch increase stays marginal even at 60% error.
"""

from __future__ import annotations

from repro.experiments import estimate_error


def test_estimate_error(benchmark, scale, run_once):
    result = run_once(estimate_error.run, scale)
    report = estimate_error.format_report(result)
    assert report

    assert result.error_levels[0] == 0.0
    # Nothing becomes unreachable (the resolution fallback exists, and with
    # these error levels it is almost never needed).
    for level in result.error_levels:
        assert result.unreachable_fraction[level] == 0.0
        assert result.resolution_fallback_fraction[level] <= 0.05

    # Stretch changes only marginally even at the largest error level.
    worst_level = max(result.error_levels)
    assert abs(result.stretch_increase(worst_level)) <= 0.10

    benchmark.extra_info["mean_stretch_no_error"] = round(
        result.mean_first_stretch[0.0], 3
    )
    benchmark.extra_info["mean_stretch_60pct_error"] = round(
        result.mean_first_stretch[worst_level], 3
    )
    benchmark.extra_info["stretch_increase_pct_at_60"] = round(
        result.stretch_increase(worst_level) * 100.0, 2
    )
