"""Benchmark: regenerate Fig. 2 (per-node state CDFs on three topologies).

Paper shape: Disco and ND-Disco have tightly balanced state everywhere; S4 is
fine on random graphs but severely unbalanced (max >> mean) on the
Internet-like topologies.
"""

from __future__ import annotations

from repro.experiments import fig02_state_cdf


def test_fig02_state_cdf(benchmark, scale, run_once):
    result = run_once(fig02_state_cdf.run, scale)
    report = fig02_state_cdf.format_report(result)
    assert report

    for panel in ("geometric", "as-level", "router-level"):
        # Disco / ND-Disco stay concentrated on every topology family.
        assert result.imbalance(panel, "Disco") < 2.5
        assert result.imbalance(panel, "ND-Disco") < 3.0

    # S4's state distribution is far more unbalanced (max/mean) than Disco's
    # or ND-Disco's on the Internet-like (heavy-tailed) topologies.  At the
    # paper's 192k-node scale this imbalance makes S4's absolute max the
    # worst of all protocols (Fig. 7); at laptop scale the imbalance ratio is
    # the scale-invariant signature of the same effect.
    for panel in ("as-level", "router-level"):
        assert result.imbalance(panel, "S4") > result.imbalance(panel, "ND-Disco")
        assert result.imbalance(panel, "S4") > result.imbalance(panel, "Disco")
        benchmark.extra_info[f"{panel}_s4_imbalance"] = round(
            result.imbalance(panel, "S4"), 2
        )

    benchmark.extra_info["router_s4_imbalance"] = round(
        result.imbalance("router-level", "S4"), 2
    )
    benchmark.extra_info["router_disco_imbalance"] = round(
        result.imbalance("router-level", "Disco"), 2
    )
