"""Benchmark: regenerate Fig. 6 (mean stretch per shortcutting heuristic).

Paper shape: No Shortcutting is the worst row; No Path Knowledge improves on
both To-Destination and the forward/reverse selection alone; the Path
Knowledge variants bring mean stretch very close to 1 on every topology.
"""

from __future__ import annotations

from repro.experiments import fig06_shortcutting


def test_fig06_shortcutting(benchmark, scale, run_once):
    result = run_once(fig06_shortcutting.run, scale)
    report = fig06_shortcutting.format_report(result)
    assert report

    for topology_label in result.topology_order:
        column = result.column(topology_label)
        none = column["No Shortcutting"]
        to_destination = column["To-Destination Shortcuts"]
        no_path_knowledge = column["No Path Knowledge"]
        path_knowledge = column["Using Path Knowledge"]

        # Every heuristic only helps, and the combinations help the most.
        assert to_destination <= none + 1e-9
        assert no_path_knowledge <= to_destination + 1e-9
        assert path_knowledge <= no_path_knowledge + 1e-9
        # Path knowledge gets very close to shortest paths (paper: 1.00-1.16).
        assert path_knowledge < 1.35

        benchmark.extra_info[f"{topology_label}_none"] = round(none, 3)
        benchmark.extra_info[f"{topology_label}_no_path_knowledge"] = round(
            no_path_knowledge, 3
        )
        benchmark.extra_info[f"{topology_label}_path_knowledge"] = round(
            path_knowledge, 3
        )
