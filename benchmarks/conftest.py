"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one table or figure of the paper at the scale
returned by :func:`repro.experiments.default_scale` (laptop-sized by default;
set ``REPRO_SCALE`` to grow toward the paper's original dimensions).  Because
one experiment run takes seconds to minutes, every benchmark executes its
experiment exactly once (``benchmark.pedantic`` with one round) and attaches
the headline numbers to ``benchmark.extra_info`` so they appear in the
pytest-benchmark report alongside the timing.
"""

from __future__ import annotations

from typing import Callable

import pytest

from repro.experiments.config import ExperimentScale, default_scale


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    """The experiment scale shared by every benchmark."""
    return default_scale()


@pytest.fixture()
def run_once(benchmark) -> Callable:
    """Run a callable exactly once under the benchmark timer."""

    def runner(function, *args, **kwargs):
        return benchmark.pedantic(
            function, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return runner
