"""Benchmark: verify Theorems 1 and 2 empirically across topology families.

Theorem 1: first-packet stretch ≤ 7, later-packet stretch ≤ 3 (w.h.p.).
Theorem 2: Õ(√n) routing-table entries per node.

The benchmark runs Disco on G(n,m), geometric, Internet-like, ring, and the
footnote-6 two-level-tree topologies, and checks the observed worst cases.
"""

from __future__ import annotations

from repro.experiments import guarantees


def test_guarantees(benchmark, scale, run_once):
    result = run_once(guarantees.run, scale)
    report = guarantees.format_report(result)
    assert report

    for row in result.rows:
        assert row.later_within_bound, (
            f"{row.topology}: later-packet stretch {row.max_later_stretch} > 3"
        )
        assert row.first_within_bound, (
            f"{row.topology}: first-packet stretch {row.max_first_stretch} > 7"
        )
        # State stays within a small constant factor of sqrt(n ln n) on every
        # family, including the pathological ones.
        assert row.state_bound_constant < 25.0
        benchmark.extra_info[f"{row.topology}_max_first_stretch"] = round(
            row.max_first_stretch, 2
        )
        benchmark.extra_info[f"{row.topology}_state_constant"] = round(
            row.state_bound_constant, 2
        )
