"""Benchmark: churn maintenance cost (extension of Fig. 8).

The paper defers continuous churn to future work; this extension measures the
incremental cost of absorbing one link event in the converged model.  The
property to check: a single link failure/recovery costs a small fraction of
reconverging from scratch, which is what makes the protocol viable under
dynamics.
"""

from __future__ import annotations

from repro.experiments import churn_cost


def test_churn_cost(benchmark, scale, run_once):
    result = run_once(churn_cost.run, scale)
    report = churn_cost.format_report(result)
    assert report

    assert result.events > 0
    assert result.full_reconvergence_entries > 0
    # One link event costs well under 10% of a full reconvergence.
    assert result.incremental_fraction < 0.10
    # The affected-address count stays a small fraction of the network.
    assert result.mean_addresses_changed <= 0.2 * result.num_nodes

    benchmark.extra_info["mean_incremental_entries"] = round(
        result.mean_incremental_entries, 1
    )
    benchmark.extra_info["incremental_fraction_pct"] = round(
        result.incremental_fraction * 100.0, 3
    )
    benchmark.extra_info["mean_addresses_changed"] = round(
        result.mean_addresses_changed, 2
    )
