"""Benchmark: regenerate Fig. 9 (mean stretch and mean state vs n).

Paper shape: S4's first-packet stretch stays high across sizes while every
other curve hugs 1; mean routing state grows as ~√n (growth exponent ≈ 0.5
on the log-log fit).
"""

from __future__ import annotations

from repro.experiments import fig09_scaling


def test_fig09_scaling(benchmark, scale, run_once):
    result = run_once(fig09_scaling.run, scale)
    report = fig09_scaling.format_report(result)
    assert report

    largest = max(result.sweep)

    # S4-First stays well above the later-packet curves; Disco-First is close
    # to Disco-Later.
    assert (
        result.mean_first_stretch["S4"][largest]
        > result.mean_first_stretch["Disco"][largest]
    )
    assert result.mean_later_stretch["Disco"][largest] < 1.5
    assert result.mean_later_stretch["S4"][largest] < 1.5

    # State grows sublinearly -- the fitted exponent is far below 1 and in the
    # √n ballpark for the compact protocols.
    for protocol in ("Disco", "ND-Disco", "S4"):
        exponent = result.state_growth_exponent(protocol)
        assert 0.2 <= exponent <= 0.85
        benchmark.extra_info[f"{protocol}_state_exponent"] = round(exponent, 3)

    benchmark.extra_info["s4_first_stretch_at_max_n"] = round(
        result.mean_first_stretch["S4"][largest], 3
    )
    benchmark.extra_info["disco_first_stretch_at_max_n"] = round(
        result.mean_first_stretch["Disco"][largest], 3
    )
