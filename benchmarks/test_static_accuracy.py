"""Benchmark: regenerate the §5.2 static-simulation accuracy check.

Paper numbers: static-vs-discrete-event mean-stretch difference within 0.9%
for Disco's later packets (0.7% for S4's).  The shape to check: the NDDisco
state produced by the discrete-event route exchange yields later-packet
stretch within a few percent of the statically computed state.
"""

from __future__ import annotations

from repro.experiments import static_accuracy


def test_static_accuracy(benchmark, scale, run_once):
    result = run_once(static_accuracy.run, scale)
    report = static_accuracy.format_report(result)
    assert report

    # Later-packet stretch from dynamically learned state is within a few
    # percent of the static model, and the learned vicinities agree broadly.
    assert result.relative_difference <= 0.05
    assert result.vicinity_membership_agreement >= 0.75
    assert result.messages_per_node > 0

    benchmark.extra_info["static_mean_later_stretch"] = round(
        result.static_mean_later_stretch, 4
    )
    benchmark.extra_info["dynamic_mean_later_stretch"] = round(
        result.dynamic_mean_later_stretch, 4
    )
    benchmark.extra_info["relative_difference_pct"] = round(
        result.relative_difference * 100.0, 2
    )
    benchmark.extra_info["vicinity_agreement_pct"] = round(
        result.vicinity_membership_agreement * 100.0, 1
    )
