"""Benchmark: regenerate Fig. 5 (state / stretch / congestion, geometric graph).

Paper shape on the 1,024-node geometric random graph with latencies: the
first-packet stretch gap is the starkest here (paper maxima: Disco 2.4, S4
30, VRR 39); state and congestion orderings match Fig. 4.
"""

from __future__ import annotations

from repro.experiments import fig05_geometric_comparison


def test_fig05_geometric_comparison(benchmark, scale, run_once):
    result = run_once(fig05_geometric_comparison.run, scale)
    report = fig05_geometric_comparison.format_report(result)
    assert report

    stretch = result.results.stretch
    state = result.results.state

    disco_first_max = stretch["Disco"].first_summary.maximum
    s4_first_max = stretch["S4"].first_summary.maximum
    vrr_max = stretch["VRR"].first_summary.maximum

    # Disco's first-packet worst case stays small and within the bound; S4 and
    # VRR blow up on the latency-annotated topology.
    assert disco_first_max <= 7.0 + 1e-9
    assert s4_first_max > 2.0 * disco_first_max
    assert vrr_max > 2.0 * disco_first_max

    # Later packets obey the compact-routing bound.
    assert stretch["Disco"].later_summary.maximum <= 3.0 + 1e-9
    assert stretch["S4"].later_summary.maximum <= 3.0 + 1e-9

    # VRR state tail heavier than Disco's.
    vrr_summary = state["VRR"].entry_summary
    disco_summary = state["Disco"].entry_summary
    assert vrr_summary.maximum / vrr_summary.mean > (
        disco_summary.maximum / disco_summary.mean
    )

    benchmark.extra_info["disco_first_max"] = round(disco_first_max, 2)
    benchmark.extra_info["s4_first_max"] = round(s4_first_max, 2)
    benchmark.extra_info["vrr_first_max"] = round(vrr_max, 2)
