"""Benchmark: regenerate Fig. 4 (state / stretch / congestion on G(n,m)).

Paper shape on the 1,024-node G(n,m) graph: VRR's state tail is far heavier
than the compact protocols' (worse than path vector for a few nodes); VRR's
stretch exceeds Disco's and S4's; congestion of the compact schemes stays
close to shortest-path routing.
"""

from __future__ import annotations

from repro.experiments import fig04_gnm_comparison


def test_fig04_gnm_comparison(benchmark, scale, run_once):
    result = run_once(fig04_gnm_comparison.run, scale)
    report = fig04_gnm_comparison.format_report(result)
    assert report

    state = result.results.state
    stretch = result.results.stretch
    congestion = result.results.congestion

    # State: Disco/ND-Disco balanced, VRR's max/mean ratio the worst.
    def imbalance(name: str) -> float:
        summary = state[name].entry_summary
        return summary.maximum / max(summary.mean, 1e-9)

    assert imbalance("VRR") > imbalance("Disco")
    assert imbalance("VRR") > imbalance("S4")
    assert imbalance("Disco") < 2.5

    # Stretch: VRR above the compact-routing protocols; bounds hold.
    assert stretch["VRR"].first_summary.mean > stretch["Disco"].first_summary.mean
    assert stretch["Disco"].later_summary.maximum <= 3.0 + 1e-9
    assert stretch["S4"].later_summary.maximum <= 3.0 + 1e-9
    assert stretch["Path-Vector"].first_summary.mean == 1.0

    # Congestion: compact routing close to shortest paths, VRR worse.
    assert congestion["Disco"].max_usage() <= 5 * congestion["Path-Vector"].max_usage()
    assert congestion["VRR"].summary.p99 >= congestion["Path-Vector"].summary.p99

    benchmark.extra_info["vrr_state_imbalance"] = round(imbalance("VRR"), 2)
    benchmark.extra_info["disco_state_imbalance"] = round(imbalance("Disco"), 2)
    benchmark.extra_info["disco_first_mean_stretch"] = round(
        stretch["Disco"].first_summary.mean, 3
    )
    benchmark.extra_info["vrr_mean_stretch"] = round(
        stretch["VRR"].first_summary.mean, 3
    )
