"""Memory canaries: suite warm footprint, build peak, ingestion peak.

PR 4 closed the warm-vs-cold *object graph* gap (scheme shells rewire onto
one shared substrate on load) but left warm retained memory at cold parity
(~35.1 MB retained on ``scenario_suite_warm/quick5-384``; see the
committed ``BENCH_kernels.json`` params history).  The array-backed
substrate tables close that residual: slabs hold one unboxed double per
distance instead of a boxed float plus dict entry, in memory and in the
pickle alike.

This canary replays the ``scenario_suite_warm`` measurement (same five
scenarios, same n=384 scale, same tracemalloc accounting as the committed
benchmark entry) and fails if a regression pushes the warm retained
footprint back above the PR 4 baseline.  The ceiling is the *old* cold
baseline with the current numbers ~8% under it, so ordinary allocator
noise cannot trip it while a return of per-node object graphs will.
"""

from __future__ import annotations

import shutil
import tempfile

from repro.perf.kernel_bench import SUITE_IDS, suite_scale, traced_suite_run

#: Retained KB of the PR 4 warm run at cold parity (the committed
#: ``scenario_suite_warm/quick5-384`` params before array-backed tables:
#: cold_end_kb 35130.0 / warm_end_kb 36377.4).  The canary asserts the
#: warm run now retains less than the *cold* side of that baseline.
PR4_COLD_PARITY_KB = 35130.0


def test_warm_retained_memory_below_pr4_baseline(benchmark, run_once):
    def measure() -> tuple[float, float]:
        from repro.scenarios.cache import ArtifactCache
        from repro.scenarios.engine import run_scenarios

        root = tempfile.mkdtemp(prefix="repro-memcanary-")
        try:
            # Populate the disk cache (cold), then trace a fully warm run.
            run_scenarios(
                SUITE_IDS,
                scale=suite_scale(384),
                workers=1,
                cache=ArtifactCache(root),
            )
            warm_end, warm_peak = traced_suite_run(root, n=384)
            return warm_end / 1024.0, warm_peak / 1024.0
        finally:
            shutil.rmtree(root, ignore_errors=True)

    warm_end_kb, warm_peak_kb = run_once(measure)
    benchmark.extra_info["warm_end_kb"] = round(warm_end_kb, 1)
    benchmark.extra_info["warm_peak_kb"] = round(warm_peak_kb, 1)
    assert warm_end_kb < PR4_COLD_PARITY_KB, (
        f"warm retained {warm_end_kb:.0f} KB regressed above the PR 4 "
        f"cold-parity baseline ({PR4_COLD_PARITY_KB:.0f} KB)"
    )


#: Build-time peak ceiling for the slab-direct substrate build, as a
#: multiple of the finished slab payload.  The builder writes kernel rows
#: straight into the preallocated slabs, so its transient overhead is a
#: few scratch rows plus the address accumulators -- measured ~1.26x at
#: n = 2^15 on both kernel tiers.  The dict-mediated path it replaced
#: peaked at several times the slab payload (per-node dict pairs plus
#: boxed floats for every vicinity entry); a return of per-node
#: intermediates trips this immediately, allocator noise cannot.
BUILD_PEAK_SLAB_RATIO = 1.6


def test_substrate_build_peak_memory_stays_slab_bound(benchmark, run_once):
    """Peak traced memory of a 2^15-node slab-direct build stays near the
    slab payload itself -- the canary for dict intermediates creeping back
    into the build path."""
    import gc
    import tracemalloc

    from repro.addressing.labels import LabelCodec
    from repro.core.landmarks import select_landmarks
    from repro.core.substrate_build import build_substrate_tables
    from repro.graphs.generators import gnm_random_graph

    n = 32768  # 2^15: the committed substrate_build/gnm-32768 bench point

    def measure() -> tuple[int, int]:
        topology = gnm_random_graph(n, seed=3, average_degree=8.0)
        codec = LabelCodec(topology)
        landmarks = select_landmarks(n, seed=1)
        topology.csr()  # snapshot outside the trace, as in the benchmark
        gc.collect()
        tracemalloc.start()
        try:
            tables = build_substrate_tables(
                topology, landmarks, codec=codec
            )
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        return tables.slab_bytes(), peak

    slab_bytes, peak_bytes = run_once(measure)
    benchmark.extra_info["slab_mb"] = round(slab_bytes / 1024**2, 1)
    benchmark.extra_info["build_peak_mb"] = round(peak_bytes / 1024**2, 1)
    assert peak_bytes < slab_bytes * BUILD_PEAK_SLAB_RATIO, (
        f"substrate build peaked at {peak_bytes / 1024**2:.0f} MiB for "
        f"{slab_bytes / 1024**2:.0f} MiB of slabs "
        f"(> {BUILD_PEAK_SLAB_RATIO}x): dict intermediates are back?"
    )


#: Ingestion peak ceiling as a multiple of the finished CSRTopology slab
#: payload (the ISSUE acceptance bound).  Streaming ingestion holds the
#: canonical edge arrays, O(n) dedup scratch, and the CSR slabs -- no
#: per-edge Python objects -- measured ~1.33x on a 2^20-edge G(n,m) edge
#: list.  The dict-mediated path it replaced allocated per-node adjacency
#: dicts plus boxed floats for every arc (many times the payload); a
#: return of per-edge objects trips this immediately.
INGEST_PEAK_SLAB_RATIO = 2.0


def test_ingestion_peak_memory_stays_slab_bound(
    benchmark, run_once, tmp_path
):
    """Peak traced memory of streaming a >=10^6-edge edge list into a
    CSRTopology stays under twice the finished slab payload."""
    import gc
    import tracemalloc

    from repro.graphs.generators import gnm_random_graph
    from repro.graphs.ingest import ingest_file
    from repro.graphs.io import write_edge_list

    n = 262144  # average degree 8 -> ~2^20 edges

    def measure() -> tuple[int, int, int]:
        path = tmp_path / "big.edges"
        topology = gnm_random_graph(n, seed=3, average_degree=8.0)
        edges = topology.num_edges
        write_edge_list(topology, path)
        del topology
        gc.collect()
        tracemalloc.start()
        try:
            ingested = ingest_file(path, backend="csr")
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert ingested.num_edges == edges
        return edges, ingested.slab_bytes(), peak

    edges, slab_bytes, peak_bytes = run_once(measure)
    assert edges >= 10**6
    benchmark.extra_info["edges"] = edges
    benchmark.extra_info["slab_mb"] = round(slab_bytes / 1024**2, 1)
    benchmark.extra_info["ingest_peak_mb"] = round(peak_bytes / 1024**2, 1)
    assert peak_bytes < slab_bytes * INGEST_PEAK_SLAB_RATIO, (
        f"ingestion peaked at {peak_bytes / 1024**2:.0f} MiB for "
        f"{slab_bytes / 1024**2:.0f} MiB of CSR slabs "
        f"(> {INGEST_PEAK_SLAB_RATIO}x): per-edge objects are back?"
    )


#: Kernel memory curve: peak traced bytes per node for one full SPT on
#: the auto-selected kernel, and the growth factor between successive
#: curve points.  The CSR slabs plus the search arena are all O(n + m),
#: so quadrupling n must not grow the peak by more than ~5x; a dense
#: matrix or per-pair cache creeping into the kernels trips the growth
#: assert long before it exhausts memory.
KERNEL_PEAK_GROWTH_LIMIT = 5.5


def test_kernel_memory_curve_stays_linear(benchmark, run_once):
    import gc
    import tracemalloc

    from repro.graphs.generators import gnm_random_graph

    def peak_for(n: int) -> int:
        topology = gnm_random_graph(n, seed=3, average_degree=8.0)
        gc.collect()
        tracemalloc.start()
        try:
            csr = topology.csr()
            csr.dijkstra(0)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        return peak

    def measure() -> tuple[int, int]:
        return peak_for(4096), peak_for(16384)

    small_peak, large_peak = run_once(measure)
    benchmark.extra_info["peak_kb_4096"] = round(small_peak / 1024.0, 1)
    benchmark.extra_info["peak_kb_16384"] = round(large_peak / 1024.0, 1)
    growth = large_peak / small_peak
    assert growth < KERNEL_PEAK_GROWTH_LIMIT, (
        f"kernel peak grew {growth:.1f}x for 4x the nodes -- "
        "superlinear kernel memory?"
    )
