"""Memory canaries: scenario-suite warm footprint, substrate build peak.

PR 4 closed the warm-vs-cold *object graph* gap (scheme shells rewire onto
one shared substrate on load) but left warm retained memory at cold parity
(~35.1 MB retained on ``scenario_suite_warm/quick5-384``; see the
committed ``BENCH_kernels.json`` params history).  The array-backed
substrate tables close that residual: slabs hold one unboxed double per
distance instead of a boxed float plus dict entry, in memory and in the
pickle alike.

This canary replays the ``scenario_suite_warm`` measurement (same five
scenarios, same n=384 scale, same tracemalloc accounting as the committed
benchmark entry) and fails if a regression pushes the warm retained
footprint back above the PR 4 baseline.  The ceiling is the *old* cold
baseline with the current numbers ~8% under it, so ordinary allocator
noise cannot trip it while a return of per-node object graphs will.
"""

from __future__ import annotations

import shutil
import tempfile

from repro.perf.kernel_bench import SUITE_IDS, suite_scale, traced_suite_run

#: Retained KB of the PR 4 warm run at cold parity (the committed
#: ``scenario_suite_warm/quick5-384`` params before array-backed tables:
#: cold_end_kb 35130.0 / warm_end_kb 36377.4).  The canary asserts the
#: warm run now retains less than the *cold* side of that baseline.
PR4_COLD_PARITY_KB = 35130.0


def test_warm_retained_memory_below_pr4_baseline(benchmark, run_once):
    def measure() -> tuple[float, float]:
        from repro.scenarios.cache import ArtifactCache
        from repro.scenarios.engine import run_scenarios

        root = tempfile.mkdtemp(prefix="repro-memcanary-")
        try:
            # Populate the disk cache (cold), then trace a fully warm run.
            run_scenarios(
                SUITE_IDS,
                scale=suite_scale(384),
                workers=1,
                cache=ArtifactCache(root),
            )
            warm_end, warm_peak = traced_suite_run(root, n=384)
            return warm_end / 1024.0, warm_peak / 1024.0
        finally:
            shutil.rmtree(root, ignore_errors=True)

    warm_end_kb, warm_peak_kb = run_once(measure)
    benchmark.extra_info["warm_end_kb"] = round(warm_end_kb, 1)
    benchmark.extra_info["warm_peak_kb"] = round(warm_peak_kb, 1)
    assert warm_end_kb < PR4_COLD_PARITY_KB, (
        f"warm retained {warm_end_kb:.0f} KB regressed above the PR 4 "
        f"cold-parity baseline ({PR4_COLD_PARITY_KB:.0f} KB)"
    )


#: Build-time peak ceiling for the slab-direct substrate build, as a
#: multiple of the finished slab payload.  The builder writes kernel rows
#: straight into the preallocated slabs, so its transient overhead is a
#: few scratch rows plus the address accumulators -- measured ~1.26x at
#: n = 2^15 on both kernel tiers.  The dict-mediated path it replaced
#: peaked at several times the slab payload (per-node dict pairs plus
#: boxed floats for every vicinity entry); a return of per-node
#: intermediates trips this immediately, allocator noise cannot.
BUILD_PEAK_SLAB_RATIO = 1.6


def test_substrate_build_peak_memory_stays_slab_bound(benchmark, run_once):
    """Peak traced memory of a 2^15-node slab-direct build stays near the
    slab payload itself -- the canary for dict intermediates creeping back
    into the build path."""
    import gc
    import tracemalloc

    from repro.addressing.labels import LabelCodec
    from repro.core.landmarks import select_landmarks
    from repro.core.substrate_build import build_substrate_tables
    from repro.graphs.generators import gnm_random_graph

    n = 32768  # 2^15: the committed substrate_build/gnm-32768 bench point

    def measure() -> tuple[int, int]:
        topology = gnm_random_graph(n, seed=3, average_degree=8.0)
        codec = LabelCodec(topology)
        landmarks = select_landmarks(n, seed=1)
        topology.csr()  # snapshot outside the trace, as in the benchmark
        gc.collect()
        tracemalloc.start()
        try:
            tables = build_substrate_tables(
                topology, landmarks, codec=codec
            )
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        return tables.slab_bytes(), peak

    slab_bytes, peak_bytes = run_once(measure)
    benchmark.extra_info["slab_mb"] = round(slab_bytes / 1024**2, 1)
    benchmark.extra_info["build_peak_mb"] = round(peak_bytes / 1024**2, 1)
    assert peak_bytes < slab_bytes * BUILD_PEAK_SLAB_RATIO, (
        f"substrate build peaked at {peak_bytes / 1024**2:.0f} MiB for "
        f"{slab_bytes / 1024**2:.0f} MiB of slabs "
        f"(> {BUILD_PEAK_SLAB_RATIO}x): dict intermediates are back?"
    )
