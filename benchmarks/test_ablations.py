"""Benchmark: design-choice ablations (vicinity size, landmark policy,
address design, resolution load smoothing).

These quantify the alternatives the paper discusses qualitatively:

* larger vicinities buy lower first-packet stretch at higher state;
* non-random landmark policies stay within the guarantees (§6);
* the fixed-size block address of §4.2 indeed has a *larger* mean size than
  the explicit-route design in practice, as the paper asserts;
* multiple virtual points per landmark smooth the resolution database's load
  imbalance (§4.5).
"""

from __future__ import annotations

from repro.experiments import ablations


def test_ablations(benchmark, scale, run_once):
    result = run_once(ablations.run, scale)
    report = ablations.format_report(result)
    assert report

    # [1] Vicinity size: state grows with the constant, stretch does not worsen.
    by_factor = {row.scale_factor: row for row in result.vicinity}
    assert by_factor[2.0].mean_state > by_factor[0.5].mean_state
    assert by_factor[2.0].mean_first_stretch <= by_factor[0.5].mean_first_stretch + 0.05

    # [2] Landmark policies: all respect the Õ(√n) budget and keep stretch
    # within the first-packet bound.
    for row in result.landmark_policies:
        assert row.max_first_stretch <= 7.0 + 1e-9
        assert row.num_landmarks <= 3 * result.landmark_policies[0].num_landmarks

    # [3] Address design: the block scheme increases the mean address size,
    # exactly as §4.2 claims.
    address = result.address_design
    assert address.block_mean_bytes > address.explicit_mean_bytes

    # [4] Resolution load smoothing: more virtual nodes, less imbalance.
    balance = {row.virtual_nodes: row.max_over_mean_load for row in result.resolution_balance}
    assert balance[16] <= balance[1]

    benchmark.extra_info["explicit_mean_bytes"] = round(address.explicit_mean_bytes, 2)
    benchmark.extra_info["block_mean_bytes"] = round(address.block_mean_bytes, 2)
    benchmark.extra_info["load_imbalance_1_vnode"] = round(balance[1], 2)
    benchmark.extra_info["load_imbalance_16_vnodes"] = round(balance[16], 2)
    benchmark.extra_info["vicinity_state_at_2x"] = round(by_factor[2.0].mean_state, 1)
