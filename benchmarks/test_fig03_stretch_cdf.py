"""Benchmark: regenerate Fig. 3 (stretch CDFs, Disco vs S4, three topologies).

Paper shape: later-packet stretch is low for both protocols; S4's
first-packet stretch has a long tail, dramatically so on the
latency-annotated geometric graph (paper: S4 worst case 72, Disco ~2).
"""

from __future__ import annotations

from repro.experiments import fig03_stretch_cdf


def test_fig03_stretch_cdf(benchmark, scale, run_once):
    result = run_once(fig03_stretch_cdf.run, scale)
    report = fig03_stretch_cdf.format_report(result)
    assert report

    for panel_name, reports in result.panels().items():
        disco = reports["Disco"]
        s4 = reports["S4"]
        # Later packets: both bounded by 3.
        assert disco.later_summary.maximum <= 3.0 + 1e-9
        assert s4.later_summary.maximum <= 3.0 + 1e-9
        # First packets: Disco's mean beats S4's (no resolution detour).
        assert disco.first_summary.mean < s4.first_summary.mean
        benchmark.extra_info[f"{panel_name}_disco_first_max"] = round(
            disco.first_summary.maximum, 2
        )
        benchmark.extra_info[f"{panel_name}_s4_first_max"] = round(
            s4.first_summary.maximum, 2
        )

    # The latency-weighted geometric panel shows the dramatic gap: S4's
    # worst-case first-packet stretch is many times Disco's.
    geometric = result.panels()["geometric"]
    assert (
        geometric["S4"].first_summary.maximum
        > 3.0 * geometric["Disco"].first_summary.maximum
    )
    # Disco's first packet stays within the Theorem-1 bound.
    assert geometric["Disco"].first_summary.maximum <= 7.0 + 1e-9
