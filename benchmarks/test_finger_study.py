"""Benchmark: regenerate the §5.2 finger-count dissemination study.

Paper numbers on the 1,024-node G(n,m) graph: 1 finger -> mean/max
announcement hop distances 5.77 / 24; 3 fingers -> 3.04 / 16, at a +3.3%
message cost.  The shape to check: more fingers shrink hop distances at a
small extra message cost, and coverage is complete either way.
"""

from __future__ import annotations

from repro.experiments import finger_study


def test_finger_study(benchmark, scale, run_once):
    result = run_once(finger_study.run, scale)
    report = finger_study.format_report(result)
    assert report

    one = result.reports[1]
    three = result.reports[3]

    # Full coverage: every intended holder receives the announcement.
    assert one.coverage == 1.0
    assert three.coverage == 1.0
    # More fingers shorten announcement travel and cost a bit more messaging.
    assert three.mean_hop_distance <= one.mean_hop_distance
    assert three.max_hop_distance <= one.max_hop_distance + 2
    assert 0.0 <= result.message_increase() <= 1.0
    # Overlay degree roughly 4 vs 8 connections (both directions counted).
    assert result.overlay_degrees[1] < result.overlay_degrees[3]

    benchmark.extra_info["mean_hops_1_finger"] = round(one.mean_hop_distance, 2)
    benchmark.extra_info["max_hops_1_finger"] = one.max_hop_distance
    benchmark.extra_info["mean_hops_3_fingers"] = round(three.mean_hop_distance, 2)
    benchmark.extra_info["max_hops_3_fingers"] = three.max_hop_distance
    benchmark.extra_info["message_increase_pct"] = round(
        result.message_increase() * 100.0, 1
    )
